#include "algo/general_partition.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(GeneralPartition, ValidWithoutKnowingArboricity) {
  for (std::size_t a : {1u, 3u, 8u, 16u}) {
    const Graph g = gen::forest_union(600, a, 73);
    const auto result = compute_general_partition(g);
    EXPECT_TRUE(
        is_h_partition(g, result.hset, result.effective_threshold))
        << "a=" << a;
    for (auto h : result.hset) EXPECT_GE(h, 1);
  }
}

TEST(GeneralPartition, EstimateWithinConstantFactor) {
  for (std::size_t a : {2u, 8u, 32u}) {
    const Graph g = gen::forest_union(800, a, 79);
    const auto result = compute_general_partition(g);
    // The estimate doubles until the partition completes: it can
    // overshoot the true arboricity by at most a constant factor, and
    // the threshold stays O(a).
    EXPECT_LE(result.arboricity_estimate, 4 * a) << a;
    EXPECT_LE(result.effective_threshold,
              PartitionParams{.arboricity = 4 * a}.threshold())
        << a;
  }
}

TEST(GeneralPartition, PhaseOneSufficesForTrees) {
  const Graph g = gen::random_tree(500, 83);
  const auto result = compute_general_partition(g);
  EXPECT_EQ(result.arboricity_estimate, 1u);
}

TEST(GeneralPartition, VertexAveragedStaysConstant) {
  for (std::size_t n : {1024u, 8192u}) {
    const Graph g = gen::forest_union(n, 4, 89);
    const auto result = compute_general_partition(g);
    // Phases multiply the constant, not the asymptotics.
    EXPECT_LE(result.metrics.vertex_averaged(), 40.0) << n;
  }
}

TEST(GeneralPartition, DenseGraphNeedsLatePhase) {
  const Graph g = gen::complete(64);  // arboricity 32
  const auto result = compute_general_partition(g);
  EXPECT_GE(result.arboricity_estimate, 8u);
  EXPECT_TRUE(is_h_partition(g, result.hset, result.effective_threshold));
}

class GeneralPartitionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(GeneralPartitionSweep, AlwaysValid) {
  const auto [n, a] = GetParam();
  const Graph g = gen::forest_union(n, a, n * 7 + a);
  const auto result = compute_general_partition(g);
  EXPECT_TRUE(is_h_partition(g, result.hset, result.effective_threshold));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GeneralPartitionSweep,
    ::testing::Combine(::testing::Values(64, 512, 2048),
                       ::testing::Values(1, 2, 5, 11)));

}  // namespace
}  // namespace valocal
