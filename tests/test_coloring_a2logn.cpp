#include "algo/coloring_a2logn.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(ColoringA2LogN, ProperOnForestUnion) {
  for (std::size_t a : {1u, 2u, 4u}) {
    const Graph g = gen::forest_union(500, a, 3);
    const auto result = compute_coloring_a2logn(g, {.arboricity = a});
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << "a=" << a;
    EXPECT_LE(result.num_colors, result.palette_bound);
  }
}

TEST(ColoringA2LogN, Theorem72ConstantVertexAveraged) {
  // VA = partition VA + 1 <= (2+eps)/eps + 2.
  for (std::size_t n : {512u, 2048u, 8192u, 32768u}) {
    const Graph g = gen::forest_union(n, 2, 11);
    const auto result =
        compute_coloring_a2logn(g, {.arboricity = 2, .epsilon = 1.0});
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << n;
    EXPECT_LE(result.metrics.vertex_averaged(), 5.0) << n;
  }
}

TEST(ColoringA2LogN, PaletteIsPolylogForConstantArboricity) {
  // Corollary 7.3 regime: for constant a, O(a^2 log n)-coloring with
  // O(1) VA means palette well below n.
  const std::size_t n = 16384;
  const Graph g = gen::forest_union(n, 2, 29);
  const auto result = compute_coloring_a2logn(g, {.arboricity = 2});
  EXPECT_LT(result.palette_bound, n / 4);
}

TEST(ColoringA2LogN, WorksOnVariousFamilies) {
  struct Case {
    Graph g;
    std::size_t a;
  };
  std::vector<Case> cases;
  cases.push_back({gen::ring(64), 2});
  cases.push_back({gen::dary_tree(255, 2), 1});
  cases.push_back({gen::grid(16, 16), 3});
  cases.push_back({gen::star(128), 1});
  cases.push_back({gen::hypercube(8), 8});
  for (auto& c : cases) {
    const auto result = compute_coloring_a2logn(c.g, {.arboricity = c.a});
    EXPECT_TRUE(is_proper_coloring(c.g, result.color));
  }
}

TEST(ColoringA2LogN, AdversarialIdsViaPermutedGeneration) {
  // The same topology under different random labellings stays proper
  // (forest_union already permutes vertex roles per seed).
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Graph g = gen::forest_union(256, 3, seed);
    const auto result = compute_coloring_a2logn(g, {.arboricity = 3});
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << seed;
  }
}

class A2LogNSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 double>> {};

TEST_P(A2LogNSweep, ProperAndCheap) {
  const auto [n, a, eps] = GetParam();
  const Graph g = gen::forest_union(n, a, n * 31 + a);
  const auto result = compute_coloring_a2logn(
      g, {.arboricity = a, .epsilon = eps});
  EXPECT_TRUE(is_proper_coloring(g, result.color));
  EXPECT_LE(result.metrics.vertex_averaged(),
            (2.0 + eps) / eps + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, A2LogNSweep,
    ::testing::Combine(::testing::Values(128, 1024, 4096),
                       ::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0.5, 1.0, 2.0)));

}  // namespace
}  // namespace valocal
