#include "algo/rings.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "util/mathx.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(LeaderElection, ElectsExactlyTheMinimum) {
  for (std::size_t n : {3u, 4u, 10u, 101u, 1024u}) {
    const auto result = compute_ring_leader_election(gen::ring(n));
    // The surviving candidate is the global minimum id.
    EXPECT_EQ(result.leader, 0u) << n;
  }
}

TEST(LeaderElection, Feuilloley12ExponentialGap) {
  // [12]: VA O(log n) vs WC Theta(n). The leader itself must wait for
  // its pointer chain to wrap the whole ring.
  for (std::size_t n : {256u, 1024u, 4096u, 16384u}) {
    const auto result = compute_ring_leader_election(gen::ring(n));
    EXPECT_GE(result.metrics.worst_case(), n / 2) << n;
    EXPECT_LE(result.metrics.vertex_averaged(),
              8.0 * std::log2(static_cast<double>(n)) + 8.0)
        << n;
  }
}

TEST(LeaderElection, CommittedRelaysAreNotChargedWaveRounds) {
  const auto result = compute_ring_leader_election(gen::ring(512));
  // Every non-leader committed long before the done wave: at least one
  // vertex (a neighbor of the minimum) commits in the very first round.
  std::size_t early = 0;
  for (Vertex v = 0; v < 512; ++v)
    if (result.metrics.rounds[v] <= 2) ++early;
  EXPECT_GE(early, 2u);
}

TEST(RingColoring3, ProperThreeColoring) {
  for (std::size_t n : {3u, 4u, 5u, 6u, 7u, 64u, 1000u, 65536u}) {
    const Graph g = gen::ring(n);
    const auto result = compute_ring_3coloring(g);
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << n;
    EXPECT_LE(result.num_colors, 3u) << n;
  }
}

TEST(RingColoring3, NegativeResultVaEqualsWorstCase) {
  // [12]'s negative result, the paper's Section 3 motivation: for
  // O(1)-coloring of rings the vertex-averaged complexity cannot beat
  // the worst case — everyone runs the full log* n schedule.
  for (std::size_t n : {256u, 65536u}) {
    const auto result = compute_ring_3coloring(gen::ring(n));
    EXPECT_DOUBLE_EQ(result.metrics.vertex_averaged(),
                     static_cast<double>(result.metrics.worst_case()))
        << n;
  }
}

TEST(RingColoring3, LogStarRounds) {
  const auto small = compute_ring_3coloring(gen::ring(64));
  const auto large = compute_ring_3coloring(gen::ring(1 << 16));
  // log*-type growth: doubling the exponent adds O(1) rounds.
  EXPECT_LE(large.metrics.worst_case(),
            small.metrics.worst_case() + 3);
}

}  // namespace
}  // namespace valocal
