#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/generators.hpp"

namespace valocal {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, SingleEdge) {
  Graph g(2, {{0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_u(0), 0u);
  EXPECT_EQ(g.edge_v(0), 1u);
  EXPECT_EQ(g.other_endpoint(0, 0), 1u);
  EXPECT_EQ(g.other_endpoint(0, 1), 0u);
}

TEST(Graph, EndpointsNormalized) {
  Graph g(3, {{2, 0}, {2, 1}});
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_LT(g.edge_u(e), g.edge_v(e));
}

TEST(Graph, NeighborsSortedAndAligned) {
  Graph g(5, {{0, 3}, {0, 1}, {0, 4}, {0, 2}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  const auto inc = g.incident_edges(0);
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    EXPECT_EQ(g.other_endpoint(inc[i], 0), nbrs[i]);
}

TEST(Graph, FindEdge) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.find_edge(1, 2), g.find_edge(2, 1));
  EXPECT_NE(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.find_edge(0, 2), kInvalidEdge);
  EXPECT_EQ(g.find_edge(0, 3), kInvalidEdge);
}

TEST(Graph, MaxDegree) {
  Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {3, 4}});
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(GraphBuilder, DeduplicatesEdges) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.add_edge(0, 1));
  EXPECT_FALSE(b.add_edge(1, 0));  // same edge, reversed
  EXPECT_FALSE(b.add_edge(0, 0));  // self-loop rejected
  EXPECT_TRUE(b.add_edge(1, 2));
  EXPECT_TRUE(b.has_edge(0, 1));
  EXPECT_FALSE(b.has_edge(0, 2));
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, DegreeSumIsTwiceEdges) {
  Graph g(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}});
  std::size_t sum = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) sum += g.degree(v);
  EXPECT_EQ(sum, 2 * g.num_edges());
}

TEST(Graph, RejectsVertexCountsBeyond32BitIds) {
  // Regression: generators take std::size_t n but Vertex is uint32, so
  // n > 2^32 - 1 used to truncate silently inside the CSR arrays.
  // Every construction path must refuse up front (the guard fires
  // before any allocation, so the death is cheap).
  const std::size_t too_many = kMaxVertices + 1;
  EXPECT_DEATH((void)GraphBuilder(too_many), "32-bit id limit");
  EXPECT_DEATH((void)Graph(too_many, {}), "32-bit id limit");
  const std::vector<Vertex> no_pairs;
  const SpanEdgeSource empty{std::span<const Vertex>(no_pairs)};
  EXPECT_DEATH((void)Graph::from_source(too_many, empty),
               "32-bit id limit");
}

// --- Streaming CSR build (Graph::from_source) ---

// Interleaved (u, v) pairs of g's edges, the generator-exchange shape.
std::vector<Vertex> interleaved_pairs(const Graph& g) {
  std::vector<Vertex> pairs;
  pairs.reserve(2 * g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    pairs.push_back(g.edge_u(e));
    pairs.push_back(g.edge_v(e));
  }
  return pairs;
}

// The reciprocal-port invariant every algorithm relies on: the mirror
// of position i at v points back at v, at the position that mirrors i,
// over the same edge id.
void expect_ports_consistent(const Graph& g) {
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto inc = g.incident_edges(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Vertex w = nbrs[i];
      const std::size_t j = g.neighbor_port(v, i);
      ASSERT_LT(j, g.degree(w));
      ASSERT_EQ(g.neighbors(w)[j], v);
      ASSERT_EQ(g.neighbor_port(w, j), i);
      ASSERT_EQ(g.incident_edges(w)[j], inc[i]);
    }
  }
}

// Same adjacency structure (ids may differ: from_source assigns
// canonical lexicographic edge ids, the staged path input order).
void expect_same_structure(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v), nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "neighbors of " << v;
  }
}

TEST(GraphFromSource, MatchesStagedBuildOnEveryGeneratorFamily) {
  const std::vector<std::pair<const char*, Graph>> families = [] {
    std::vector<std::pair<const char*, Graph>> out;
    out.emplace_back("ring", gen::ring(64));
    out.emplace_back("path", gen::path(50));
    out.emplace_back("star", gen::star(40));
    out.emplace_back("complete", gen::complete(20));
    out.emplace_back("dary_tree", gen::dary_tree(60, 3));
    out.emplace_back("random_tree", gen::random_tree(80, 7));
    out.emplace_back("grid", gen::grid(8, 9));
    out.emplace_back("torus", gen::torus(5, 6));
    out.emplace_back("hypercube", gen::hypercube(5));
    out.emplace_back("forest_union", gen::forest_union(120, 3, 11));
    out.emplace_back("erdos_renyi", gen::erdos_renyi(150, 6.0, 13));
    out.emplace_back("barabasi_albert", gen::barabasi_albert(90, 3, 17));
    out.emplace_back("caterpillar", gen::caterpillar(12, 4));
    out.emplace_back("star_union", gen::star_union(100, 5));
    out.emplace_back("random_regular", gen::random_regular(64, 4, 19));
    out.emplace_back("random_bipartite",
                     gen::random_bipartite(30, 40, 150, 23));
    return out;
  }();
  for (const auto& [name, g] : families) {
    SCOPED_TRACE(name);
    const std::vector<Vertex> pairs = interleaved_pairs(g);
    const SpanEdgeSource src(pairs);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const Graph streamed =
          Graph::from_source(g.num_vertices(), src, threads);
      expect_same_structure(streamed, g);
      expect_ports_consistent(streamed);
    }
  }
}

TEST(GraphFromSource, DropsSelfLoopsAndDuplicates) {
  // Generator-exchange semantics (unlike the rejecting vector ctor):
  // raw streams carry self-loops and repeats in both orientations.
  const std::vector<Vertex> pairs = {0, 1, 1, 0, 2, 2, 1, 2, 1, 2, 3, 3};
  const Graph g =
      Graph::from_source(4, SpanEdgeSource(pairs));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 2));
  expect_ports_consistent(g);
}

TEST(GraphFromSource, CanonicalEdgeIdsRegardlessOfPairOrder) {
  const std::vector<Vertex> forward = {0, 1, 0, 2, 1, 2};
  const std::vector<Vertex> shuffled = {2, 1, 2, 0, 1, 0};
  const Graph a = Graph::from_source(3, SpanEdgeSource(forward));
  const Graph b = Graph::from_source(3, SpanEdgeSource(shuffled));
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    EXPECT_EQ(a.edge_u(e), b.edge_u(e));
    EXPECT_EQ(a.edge_v(e), b.edge_v(e));
  }
  // Lexicographic by (u, v): ids are sorted.
  for (EdgeId e = 1; e < a.num_edges(); ++e) {
    const bool ordered =
        a.edge_u(e - 1) < a.edge_u(e) ||
        (a.edge_u(e - 1) == a.edge_u(e) && a.edge_v(e - 1) < a.edge_v(e));
    EXPECT_TRUE(ordered) << "edge " << e;
  }
}

TEST(GraphFromSource, OutOfRangeEndpointDies) {
  const std::vector<Vertex> pairs = {0, 1, 5, 1};
  EXPECT_DEATH((void)Graph::from_source(3, SpanEdgeSource(pairs)),
               "out of range");
}

TEST(GraphFromSource, EmptySource) {
  const std::vector<Vertex> no_pairs;
  const Graph g =
      Graph::from_source(5, SpanEdgeSource(std::span<const Vertex>(no_pairs)));
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  const Graph empty = Graph::from_source(0, SpanEdgeSource({}));
  EXPECT_EQ(empty.num_vertices(), 0u);
}

}  // namespace
}  // namespace valocal
