#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace valocal {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
}

TEST(Graph, SingleEdge) {
  Graph g(2, {{0, 1}});
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_u(0), 0u);
  EXPECT_EQ(g.edge_v(0), 1u);
  EXPECT_EQ(g.other_endpoint(0, 0), 1u);
  EXPECT_EQ(g.other_endpoint(0, 1), 0u);
}

TEST(Graph, EndpointsNormalized) {
  Graph g(3, {{2, 0}, {2, 1}});
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_LT(g.edge_u(e), g.edge_v(e));
}

TEST(Graph, NeighborsSortedAndAligned) {
  Graph g(5, {{0, 3}, {0, 1}, {0, 4}, {0, 2}});
  const auto nbrs = g.neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  const auto inc = g.incident_edges(0);
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    EXPECT_EQ(g.other_endpoint(inc[i], 0), nbrs[i]);
}

TEST(Graph, FindEdge) {
  Graph g(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.find_edge(1, 2), g.find_edge(2, 1));
  EXPECT_NE(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_EQ(g.find_edge(0, 2), kInvalidEdge);
  EXPECT_EQ(g.find_edge(0, 3), kInvalidEdge);
}

TEST(Graph, MaxDegree) {
  Graph g(5, {{0, 1}, {0, 2}, {0, 3}, {3, 4}});
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(GraphBuilder, DeduplicatesEdges) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.add_edge(0, 1));
  EXPECT_FALSE(b.add_edge(1, 0));  // same edge, reversed
  EXPECT_FALSE(b.add_edge(0, 0));  // self-loop rejected
  EXPECT_TRUE(b.add_edge(1, 2));
  EXPECT_TRUE(b.has_edge(0, 1));
  EXPECT_FALSE(b.has_edge(0, 2));
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, DegreeSumIsTwiceEdges) {
  Graph g(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 3}});
  std::size_t sum = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) sum += g.degree(v);
  EXPECT_EQ(sum, 2 * g.num_edges());
}

}  // namespace
}  // namespace valocal
