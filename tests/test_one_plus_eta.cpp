#include "algo/one_plus_eta.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "algo/arbdefective.hpp"
#include "algo/partition.hpp"
#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(Arbdefective, ClassesHaveReducedArboricity) {
  // k = t = 10 on an arboricity-8 graph: classes must have arbdefect
  // <= floor(a/t + 4a/k) = floor(8/10 + 32/10) = 4.
  const Graph g = gen::forest_union(800, 8, 3);
  const auto result = arbdefective_coloring(g, 8, 10, 10);
  std::vector<int> classes(result.color.begin(), result.color.end());
  for (int c : classes) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 10);
  }
  // Degeneracy over-estimates arboricity by at most 2x.
  EXPECT_LE(coloring_arbdefect_ub(g, classes), 2u * 4u);
  EXPECT_GT(result.duration, 0u);
}

TEST(Arbdefective, SingleClassDegeneratesToWholeGraph) {
  const Graph g = gen::forest_union(200, 4, 7);
  const auto result = arbdefective_coloring(g, 4, 1, 1);
  for (auto c : result.color) EXPECT_EQ(c, 0u);
}

TEST(Arbdefective, HVariantUsesSuppliedPartition) {
  const Graph g = gen::forest_union(300, 4, 9);
  const PartitionParams params{.arboricity = 4, .epsilon = 2.0};
  const auto partition = compute_h_partition(g, params);
  const auto result = h_arbdefective_coloring(
      g, partition.hset, partition.threshold, 8, 8);
  for (auto c : result.color) EXPECT_LT(c, 8u);
  std::vector<int> classes(result.color.begin(), result.color.end());
  // floor(a/t + 4a/k) = floor(4/8 + 16/8) = 2; degeneracy <= 2*2.
  EXPECT_LE(coloring_arbdefect_ub(g, classes), 4u);
}

TEST(LegalColoring, ProperWithBoundedPalette) {
  const Graph g = gen::forest_union(600, 12, 5);
  const auto result = legal_coloring(g, 12, 8);
  std::vector<int> colors(result.color.begin(), result.color.end());
  EXPECT_TRUE(is_proper_coloring(g, colors));
  EXPECT_LE(count_colors(colors), result.palette);
  // Every vertex is charged the same synchronized duration.
  for (auto r : result.rounds) EXPECT_EQ(r, result.rounds[0]);
}

TEST(LegalColoring, SmallArboricitySkipsRefinement) {
  const Graph g = gen::forest_union(300, 2, 11);
  const auto result = legal_coloring(g, 2, 8);
  std::vector<int> colors(result.color.begin(), result.color.end());
  EXPECT_TRUE(is_proper_coloring(g, colors));
}

TEST(OnePlusEta, BaseCaseMatchesKa2) {
  // a < C: the base case must behave like Section 7.6.
  const Graph g = gen::forest_union(500, 2, 13);
  const auto result =
      compute_one_plus_eta(g, {.arboricity = 2, .big_c = 8});
  EXPECT_TRUE(is_proper_coloring(g, result.color));
}

TEST(OnePlusEta, ProperOnHighArboricity) {
  for (std::size_t a : {8u, 16u, 32u}) {
    const Graph g = gen::forest_union(600, a, 17);
    const auto result =
        compute_one_plus_eta(g, {.arboricity = a, .big_c = 8});
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << "a=" << a;
    EXPECT_LE(result.num_colors, result.palette_bound);
  }
}

TEST(OnePlusEta, RecursionEngages) {
  // a = 2C guarantees at least one recursive level; the round counts
  // must reflect the staged schedule (nonzero, varying across vertices
  // only between branches).
  const Graph g = gen::forest_union(2000, 16, 19);
  const auto result =
      compute_one_plus_eta(g, {.arboricity = 16, .big_c = 8});
  EXPECT_TRUE(is_proper_coloring(g, result.color));
  for (auto r : result.metrics.rounds) EXPECT_GT(r, 0u);
  EXPECT_GT(result.metrics.worst_case(), 0u);
  EXPECT_LE(result.metrics.vertex_averaged(),
            static_cast<double>(result.metrics.worst_case()));
}

TEST(OnePlusEta, PaletteSublinearInNForFixedA) {
  const auto small = compute_one_plus_eta(gen::forest_union(512, 8, 3),
                                          {.arboricity = 8});
  const auto large = compute_one_plus_eta(gen::forest_union(8192, 8, 3),
                                          {.arboricity = 8});
  // Colors used depend on a, not n (up to stragglers).
  EXPECT_LE(large.num_colors, 4 * small.num_colors + 64);
}

TEST(OnePlusEta, RejectsTooSmallC) {
  const Graph g = gen::ring(8);
  EXPECT_DEATH(
      (void)compute_one_plus_eta(g, {.arboricity = 2, .big_c = 4}),
      "Legal-Coloring");
}

class OnePlusEtaSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(OnePlusEtaSweep, Proper) {
  const auto [n, a] = GetParam();
  const Graph g = gen::forest_union(n, a, n + 7 * a);
  const auto result = compute_one_plus_eta(g, {.arboricity = a});
  EXPECT_TRUE(is_proper_coloring(g, result.color));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OnePlusEtaSweep,
    ::testing::Combine(::testing::Values(200, 1000),
                       ::testing::Values(2, 8, 12, 24)));

}  // namespace
}  // namespace valocal
