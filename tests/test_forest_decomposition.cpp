#include "algo/forest_decomposition.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(ForestDecomposition, ValidOnForestUnion) {
  for (std::size_t a : {1u, 2u, 4u}) {
    const Graph g = gen::forest_union(300, a, 31);
    const auto result =
        compute_forest_decomposition(g, {.arboricity = a});
    EXPECT_TRUE(is_forest_decomposition(g, result.decomposition.orientation,
                                        result.decomposition.label,
                                        result.decomposition.num_forests))
        << "a=" << a;
    // O(a) forests: at most the H-partition degree bound A.
    EXPECT_LE(result.decomposition.num_forests,
              PartitionParams{.arboricity = a}.threshold());
  }
}

TEST(ForestDecomposition, OrientationAcyclicAndBounded) {
  const Graph g = gen::erdos_renyi(500, 5.0, 7);
  const std::size_t a = arboricity_upper_bound(g);
  const auto result = compute_forest_decomposition(g, {.arboricity = a});
  EXPECT_TRUE(result.decomposition.orientation.is_acyclic());
  EXPECT_LE(result.decomposition.orientation.max_out_degree(),
            PartitionParams{.arboricity = a}.threshold());
  EXPECT_EQ(result.decomposition.orientation.num_oriented(),
            g.num_edges());
}

TEST(ForestDecomposition, CrossSetEdgesPointToLaterSet) {
  const Graph g = gen::star(50);
  const auto result = compute_forest_decomposition(g, {.arboricity = 1});
  // Leaves join H_1, center joins H_2; all edges towards the center.
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(result.decomposition.orientation.head(e), 0u);
}

TEST(ForestDecomposition, SameSetEdgesPointToHigherId) {
  const Graph g = gen::ring(6);  // all vertices join H_1 together
  const auto result = compute_forest_decomposition(g, {.arboricity = 2});
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_EQ(result.decomposition.orientation.head(e),
              std::max(g.edge_u(e), g.edge_v(e)));
}

TEST(ForestDecomposition, VertexAveragedConstant) {
  // One extra round over Procedure Partition: VA <= (2+eps)/eps + 2.
  for (std::size_t n : {512u, 4096u}) {
    const Graph g = gen::forest_union(n, 2, 13);
    const auto result = compute_forest_decomposition(
        g, {.arboricity = 2, .epsilon = 1.0});
    EXPECT_LE(result.metrics.vertex_averaged(), 3.0 + 2.0) << n;
  }
}

TEST(ForestDecomposition, LabelsAreLocalEnumerations) {
  const Graph g = gen::forest_union(200, 3, 19);
  const auto result = compute_forest_decomposition(g, {.arboricity = 3});
  const auto& fd = result.decomposition;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    std::vector<bool> used(fd.num_forests, false);
    for (EdgeId e : g.incident_edges(v)) {
      if (fd.orientation.tail(e) != v) continue;
      ASSERT_GE(fd.label[e], 0);
      ASSERT_LT(static_cast<std::size_t>(fd.label[e]), fd.num_forests);
      EXPECT_FALSE(used[fd.label[e]]) << "duplicate out-label at " << v;
      used[fd.label[e]] = true;
    }
  }
}

class ForestDecompSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 double>> {};

TEST_P(ForestDecompSweep, AlwaysValid) {
  const auto [n, a, eps] = GetParam();
  const Graph g = gen::forest_union(n, a, 7 * n + a);
  const auto result = compute_forest_decomposition(
      g, {.arboricity = a, .epsilon = eps});
  EXPECT_TRUE(is_forest_decomposition(g, result.decomposition.orientation,
                                      result.decomposition.label,
                                      result.decomposition.num_forests));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ForestDecompSweep,
    ::testing::Combine(::testing::Values(128, 1024),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(0.5, 1.0, 2.0)));

}  // namespace
}  // namespace valocal
