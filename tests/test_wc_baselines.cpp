#include "baseline/wc_edge_mm.hpp"

#include <gtest/gtest.h>

#include "baseline/be08_arb_color.hpp"
#include "baseline/wc_delta_plus1.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(WcEdgeColoring, ProperWithTwoDeltaMinusOne) {
  for (std::uint64_t seed : {1ULL, 5ULL}) {
    const Graph g = gen::erdos_renyi(300, 6.0, seed);
    const auto result = compute_wc_edge_coloring(g);
    EXPECT_TRUE(is_proper_edge_coloring(g, result.color)) << seed;
    EXPECT_LE(result.num_colors, 2 * g.max_degree() - 1);
    EXPECT_DOUBLE_EQ(result.metrics.vertex_averaged(),
                     static_cast<double>(result.metrics.worst_case()));
  }
}

TEST(WcEdgeColoring, TinyGraphs) {
  const Graph pair(2, {{0, 1}});
  const auto result = compute_wc_edge_coloring(pair);
  EXPECT_TRUE(is_proper_edge_coloring(pair, result.color));
  const Graph g = gen::star(5);
  const auto star = compute_wc_edge_coloring(g);
  EXPECT_TRUE(is_proper_edge_coloring(g, star.color));
}

TEST(WcMatching, MaximalAndRunToCompletion) {
  for (std::uint64_t seed : {2ULL, 7ULL}) {
    const Graph g = gen::forest_union(400, 3, seed);
    const auto result = compute_wc_matching(g);
    EXPECT_TRUE(is_maximal_matching(g, result.in_matching)) << seed;
    EXPECT_DOUBLE_EQ(result.metrics.vertex_averaged(),
                     static_cast<double>(result.metrics.worst_case()));
  }
}

TEST(WcBaselines, RoundsScaleWithDeltaNotN) {
  // Fixed-degree family: the schedule is Delta log Delta + log* terms.
  const auto small = compute_wc_edge_coloring(gen::dary_tree(256, 3));
  const auto large = compute_wc_edge_coloring(gen::dary_tree(8192, 3));
  EXPECT_LE(large.metrics.worst_case(),
            small.metrics.worst_case() + 6);
}

TEST(WcBaselines, AllFourBaselinesAreVaEqualsWc) {
  const Graph g = gen::forest_union(300, 2, 11);
  const auto a = compute_be08_arb_color(g, {.arboricity = 2});
  const auto b = compute_wc_delta_plus1(g);
  const auto c = compute_wc_edge_coloring(g);
  const auto d = compute_wc_matching(g);
  for (const Metrics* m :
       {&a.metrics, &b.metrics, &c.metrics, &d.metrics})
    EXPECT_DOUBLE_EQ(m->vertex_averaged(),
                     static_cast<double>(m->worst_case()));
}

}  // namespace
}  // namespace valocal
