#include "algo/coloring_oa.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include <cmath>

#include "baseline/wc_delta_plus1.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(ColoringOa, ProperWithLinearPalette) {
  for (std::size_t a : {1u, 2u, 4u}) {
    const Graph g = gen::forest_union(400, a, 21);
    const auto result = compute_coloring_oa(g, {.arboricity = a});
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << "a=" << a;
    // Theorem 7.9: O(a) colors — exactly 2(A+1) here.
    EXPECT_LE(result.num_colors, result.palette_bound);
    EXPECT_EQ(result.palette_bound,
              2 * (PartitionParams{.arboricity = a}.threshold() + 1));
  }
}

TEST(ColoringOa, PaletteIndependentOfN) {
  const auto small = compute_coloring_oa(gen::forest_union(256, 3, 2),
                                         {.arboricity = 3});
  const auto large = compute_coloring_oa(gen::forest_union(16384, 3, 2),
                                         {.arboricity = 3});
  EXPECT_EQ(small.palette_bound, large.palette_bound);
}

TEST(ColoringOa, VaBelowWorstCaseOnAdversarialTree) {
  // See ColoringA2.VaWellBelowWorstCaseOnAdversarialTree: the complete
  // (A+1)-ary tree forces Theta(log n / log a) partition rounds while
  // the vertex-averaged complexity stays near the phase-1 span.
  const PartitionParams params{.arboricity = 1, .epsilon = 1.0};
  const std::size_t n = 262144;
  const Graph g = gen::dary_tree(n, params.threshold() + 1);
  const auto result = compute_coloring_oa(g, params);
  EXPECT_TRUE(is_proper_coloring(g, result.color));
  EXPECT_LT(result.metrics.vertex_averaged(),
            0.6 * static_cast<double>(result.metrics.worst_case()));
}

TEST(ColoringOa, VaTracksPhase1Schedule) {
  // Every vertex pays at most the phase-1 span plus the straggler tail.
  const std::size_t n = 16384;
  const Graph g = gen::forest_union(n, 2, 19);
  ColoringOaAlgo algo(n, {.arboricity = 2, .epsilon = 1.0});
  const auto result =
      compute_coloring_oa(g, {.arboricity = 2, .epsilon = 1.0});
  const std::size_t a_thresh = PartitionParams{.arboricity = 2}.threshold();
  const double phase1_span =
      static_cast<double>(algo.phase1_sets() * (1 + algo.plan_rounds()) +
                          algo.phase1_sets() * (a_thresh + 1) + 2);
  const double tail = static_cast<double>(result.metrics.worst_case()) /
                      std::log2(static_cast<double>(n));
  EXPECT_LE(result.metrics.vertex_averaged(), phase1_span + tail + 1.0);
}

TEST(ColoringOa, WorksOnStructuredFamilies) {
  struct Case {
    Graph g;
    std::size_t a;
  };
  std::vector<Case> cases;
  cases.push_back({gen::ring(200), 2});
  cases.push_back({gen::grid(20, 20), 3});
  cases.push_back({gen::random_tree(300, 4), 1});
  cases.push_back({gen::star(150), 1});
  cases.push_back({gen::caterpillar(30, 5), 1});
  for (auto& c : cases) {
    const auto result = compute_coloring_oa(c.g, {.arboricity = c.a});
    EXPECT_TRUE(is_proper_coloring(c.g, result.color));
    EXPECT_LE(result.num_colors, result.palette_bound);
  }
}

TEST(ColoringOa, TinyGraphs) {
  const Graph single(1, {});
  EXPECT_TRUE(is_proper_coloring(
      single, compute_coloring_oa(single, {.arboricity = 1}).color));
  const Graph pair(2, {{0, 1}});
  EXPECT_TRUE(is_proper_coloring(
      pair, compute_coloring_oa(pair, {.arboricity = 1}).color));
}

class OaSweep : public ::testing::TestWithParam<
                    std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(OaSweep, ProperEverywhere) {
  const auto [n, a, eps] = GetParam();
  const Graph g = gen::forest_union(n, a, 13 * n + a);
  const auto result =
      compute_coloring_oa(g, {.arboricity = a, .epsilon = eps});
  EXPECT_TRUE(is_proper_coloring(g, result.color));
  EXPECT_LE(result.num_colors, result.palette_bound);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OaSweep,
    ::testing::Combine(::testing::Values(128, 1024),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(0.5, 1.0, 2.0)));

TEST(WcBaseline, DeltaPlusOneProper) {
  // Exercises the run-to-completion baseline used by the benches.
  const Graph g = gen::erdos_renyi(400, 6.0, 3);
  const auto result = compute_wc_delta_plus1(g);
  EXPECT_TRUE(is_proper_coloring(g, result.color));
  EXPECT_LE(result.num_colors, g.max_degree() + 1);
  // No early termination: VA == worst case.
  EXPECT_DOUBLE_EQ(result.metrics.vertex_averaged(),
                   static_cast<double>(result.metrics.worst_case()));
}

}  // namespace
}  // namespace valocal
