// Frontier-representation contract tests: run_local must produce
// byte-identical outputs, r(v), and active_per_round under every
// forced frontier mode (dense / sparse / calendar) and under the
// measured auto switch, for every threads x grain x sleep-hint
// combination — the representation is a throughput knob, never a
// semantic one. The trace layer's per-round mode labels and the
// run-end switch count are checked for consistency: forced modes pin
// the label and report zero switches; auto's labels follow the awake
// fraction and the switch count equals the label changes.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "algo/hset_composition.hpp"
#include "algo/partition.hpp"
#include "algo/rings.hpp"
#include "baseline/luby_mis.hpp"
#include "graph/generators.hpp"
#include "graph/rmat.hpp"
#include "sim/network.hpp"
#include "trace/trace.hpp"

namespace valocal {
namespace {

// Deterministic wait-heavy workload (mirrors bench_common's): a
// composition whose sub terminates after 2 of 24 budgeted sub-rounds,
// so unjoined vertices idle through most of every block — the regime
// where auto picks the calendar representation once hints are on.
struct IdleSub {
  struct State {
    std::uint64_t x = 1;
  };
  using Output = std::uint64_t;

  std::size_t sub_rounds() const { return 24; }

  bool step(Vertex v, std::size_t t, const SubView<State>& view,
            State& next, Xoshiro256&) const {
    std::uint64_t mix = next.x * 0x9e3779b97f4a7c15ULL + v + t;
    for (std::size_t i = 0; i < view.degree(); ++i)
      if (view.same_set(i)) mix += view.neighbor_state(i).x;
    next.x = mix;
    return t >= 1;
  }

  Output output(Vertex, const State& s) const { return s.x; }

  static constexpr bool uses_rng = false;
};

constexpr FrontierMode kModes[] = {FrontierMode::kAuto,
                                   FrontierMode::kDense,
                                   FrontierMode::kSparse,
                                   FrontierMode::kCalendar};

/// Records the per-round representation labels and the run-end switch
/// count (the two new trace fields this suite pins down).
struct ModeLog final : trace::TraceSink {
  std::vector<std::uint8_t> labels;
  std::uint64_t switches = 0;
  void on_round(const trace::RoundEvent& e) override {
    labels.push_back(e.frontier_mode);
  }
  void on_run_end(const trace::RunEndEvent& e) override {
    switches = e.frontier_switches;
  }
};

/// Sweeps every mode x threads x grain combination against the forced
/// sparse serial reference and checks the semantic triple; hinted
/// algorithms are swept under both hint settings by the caller.
template <class A>
void expect_mode_equivalence(const Graph& g, const A& algo,
                             std::uint64_t seed, SleepHints hints) {
  const auto ref = run_local(
      g, algo,
      {.seed = seed,
       .num_threads = 1,
       .sleep_hints = hints,
       .frontier_mode = FrontierMode::kSparse});
  for (const FrontierMode mode : kModes) {
    for (std::size_t threads : {1u, 4u}) {
      for (std::size_t grain : {0u, 7u}) {
        const auto run = run_local(g, algo,
                                   {.seed = seed,
                                    .num_threads = threads,
                                    .grain = grain,
                                    .sleep_hints = hints,
                                    .frontier_mode = mode});
        const std::string what =
            std::string("mode=") + frontier_mode_name(mode) +
            " threads=" + std::to_string(threads) +
            " grain=" + std::to_string(grain) +
            " hints=" + (hints == SleepHints::kOn ? "on" : "off");
        EXPECT_EQ(run.outputs, ref.outputs) << what;
        EXPECT_EQ(run.metrics.rounds, ref.metrics.rounds) << what;
        EXPECT_EQ(run.metrics.active_per_round,
                  ref.metrics.active_per_round)
            << what;
      }
    }
  }
}

template <class A>
ModeLog traced_modes(const Graph& g, const A& algo, RunOptions opt) {
  ModeLog log;
  {
    trace::ScopedSink scoped(&log);
    (void)run_local(g, algo, opt);
  }
  return log;
}

TEST(FrontierEngine, RingColoringIsByteIdenticalAcrossModes) {
  const Graph g = gen::ring(2048);
  const RingColoring3Algo algo(g.num_vertices());
  expect_mode_equivalence(g, algo, 0x5eed, SleepHints::kOff);
  expect_mode_equivalence(g, algo, 0x5eed, SleepHints::kOn);
}

TEST(FrontierEngine, RandomizedMisOnRmatIsByteIdenticalAcrossModes) {
  // RNG-drawing algorithm: identical outputs across modes prove the
  // per-vertex streams advance identically regardless of iteration
  // shape (flat scan vs list walk).
  const Graph g = gen::rmat(gen::parse_rmat_spec("12x8", 7));
  const LubyMisAlgo algo;
  for (std::uint64_t seed : {1u, 4242u})
    expect_mode_equivalence(g, algo, seed, SleepHints::kOff);
}

TEST(FrontierEngine, WaitHeavyCompositionIsByteIdenticalAcrossModes) {
  const PartitionParams params{.arboricity = 1, .epsilon = 1.0};
  const Graph g = gen::dary_tree(1500, params.threshold() + 1);
  const HSetComposition<IdleSub> algo(g.num_vertices(), params,
                                      IdleSub{});
  expect_mode_equivalence(g, algo, 0x5eed, SleepHints::kOff);
  expect_mode_equivalence(g, algo, 0x5eed, SleepHints::kOn);
}

TEST(FrontierEngine, ForcedModesPinRoundLabelsAndReportNoSwitches) {
  const Graph g = gen::ring(512);
  const RingColoring3Algo algo(g.num_vertices());
  for (const SleepHints hints : {SleepHints::kOff, SleepHints::kOn}) {
    for (const FrontierMode mode :
         {FrontierMode::kDense, FrontierMode::kSparse,
          FrontierMode::kCalendar}) {
      const ModeLog log = traced_modes(
          g, algo,
          {.seed = 1, .sleep_hints = hints, .frontier_mode = mode});
      ASSERT_FALSE(log.labels.empty());
      for (const std::uint8_t label : log.labels)
        EXPECT_EQ(label, static_cast<std::uint8_t>(mode))
            << "forced " << frontier_mode_name(mode);
      EXPECT_EQ(log.switches, 0u) << frontier_mode_name(mode);
    }
  }
}

TEST(FrontierEngine, AutoLabelsFollowAwakeFractionAndCountSwitches) {
  // Wait-heavy composition with hints on: the run starts dense (all
  // awake), then drops below the threshold into calendar rounds as
  // blocks park — auto must record that trajectory and count each
  // label change exactly once, identically for every schedule.
  const PartitionParams params{.arboricity = 1, .epsilon = 1.0};
  const Graph g = gen::dary_tree(1500, params.threshold() + 1);
  const HSetComposition<IdleSub> algo(g.num_vertices(), params,
                                      IdleSub{});
  const RunOptions base{.seed = 1,
                        .sleep_hints = SleepHints::kOn,
                        .frontier_mode = FrontierMode::kAuto};
  const ModeLog ref = traced_modes(g, algo, base);
  ASSERT_FALSE(ref.labels.empty());
  EXPECT_EQ(ref.labels.front(),
            static_cast<std::uint8_t>(FrontierMode::kDense))
      << "round 1 has every vertex awake";
  std::uint64_t changes = 0;
  bool saw_calendar = false;
  for (std::size_t i = 1; i < ref.labels.size(); ++i) {
    if (ref.labels[i] != ref.labels[i - 1]) ++changes;
    saw_calendar |= ref.labels[i] ==
                    static_cast<std::uint8_t>(FrontierMode::kCalendar);
  }
  EXPECT_EQ(ref.switches, changes);
  EXPECT_GT(ref.switches, 0u);
  EXPECT_TRUE(saw_calendar)
      << "hinted wait-heavy run must reach the calendar representation";

  for (std::size_t threads : {2u, 4u}) {
    RunOptions opt = base;
    opt.num_threads = threads;
    const ModeLog run = traced_modes(g, algo, opt);
    EXPECT_EQ(run.labels, ref.labels) << "threads=" << threads;
    EXPECT_EQ(run.switches, ref.switches) << "threads=" << threads;
  }
}

TEST(FrontierEngine, ProcessWideDefaultIsInheritedAndOverridable) {
  const Graph g = gen::ring(256);
  const RingColoring3Algo algo(g.num_vertices());
  const auto ref = run_local(
      g, algo, {.seed = 1, .frontier_mode = FrontierMode::kSparse});

  set_engine_frontier_mode(FrontierMode::kDense);
  const ModeLog inherited = traced_modes(g, algo, {.seed = 1});
  const ModeLog overridden = traced_modes(
      g, algo, {.seed = 1, .frontier_mode = FrontierMode::kSparse});
  set_engine_frontier_mode(FrontierMode::kAuto);

  for (const std::uint8_t label : inherited.labels)
    EXPECT_EQ(label, static_cast<std::uint8_t>(FrontierMode::kDense));
  for (const std::uint8_t label : overridden.labels)
    EXPECT_EQ(label, static_cast<std::uint8_t>(FrontierMode::kSparse));
  const auto back = run_local(g, algo, {.seed = 1});
  EXPECT_EQ(back.outputs, ref.outputs);
}

TEST(FrontierEngine, ModeNamesRoundTrip) {
  for (const FrontierMode mode : kModes) {
    const auto parsed = frontier_mode_from_name(frontier_mode_name(mode));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(frontier_mode_from_name("bogus").has_value());
  EXPECT_FALSE(frontier_mode_from_name("").has_value());
}

// ---------------------------------------------------------------------
// State-layout axis (sim/state_pack.hpp): packed vs AoS storage must be
// byte-identical in outputs, r(v), and active_per_round for every
// frontier mode x threads x grain x sleep-hint combination — the same
// contract as the frontier representation, extended to the layout.

/// Sweeps both forced layouts across the full mode/threads/grain grid
/// against the forced-AoS sparse serial reference.
template <class A>
void expect_layout_equivalence(const Graph& g, const A& algo,
                               std::uint64_t seed, SleepHints hints) {
  const auto ref = run_local(g, algo,
                             {.seed = seed,
                              .num_threads = 1,
                              .sleep_hints = hints,
                              .frontier_mode = FrontierMode::kSparse,
                              .layout = StateLayout::kAos});
  for (const StateLayout layout :
       {StateLayout::kPacked, StateLayout::kAos}) {
    for (const FrontierMode mode : kModes) {
      for (std::size_t threads : {1u, 4u}) {
        for (std::size_t grain : {0u, 7u}) {
          const auto run = run_local(g, algo,
                                     {.seed = seed,
                                      .num_threads = threads,
                                      .grain = grain,
                                      .sleep_hints = hints,
                                      .frontier_mode = mode,
                                      .layout = layout});
          const std::string what =
              std::string("layout=") + state_layout_name(layout) +
              " mode=" + frontier_mode_name(mode) +
              " threads=" + std::to_string(threads) +
              " grain=" + std::to_string(grain) +
              " hints=" + (hints == SleepHints::kOn ? "on" : "off");
          EXPECT_EQ(run.outputs, ref.outputs) << what;
          EXPECT_EQ(run.metrics.rounds, ref.metrics.rounds) << what;
          EXPECT_EQ(run.metrics.active_per_round,
                    ref.metrics.active_per_round)
              << what;
        }
      }
    }
  }
}

TEST(StateLayout, RingColoringIsByteIdenticalAcrossLayouts) {
  const Graph g = gen::ring(2048);
  const RingColoring3Algo algo(g.num_vertices());
  static_assert(StatePacked<RingColoring3Algo>);
  expect_layout_equivalence(g, algo, 0x5eed, SleepHints::kOff);
  expect_layout_equivalence(g, algo, 0x5eed, SleepHints::kOn);
}

TEST(StateLayout, PartitionOnTreeIsByteIdenticalAcrossLayouts) {
  // PartitionAlgo declares no pack: forcing kPacked must silently run
  // the AoS path (the layout trait is opt-in), and both forced values
  // must agree with the default.
  const PartitionParams params{.arboricity = 1, .epsilon = 1.0};
  const Graph g = gen::dary_tree(1500, params.threshold() + 1);
  const PartitionAlgo algo(params);
  static_assert(!StatePacked<PartitionAlgo>);
  expect_layout_equivalence(g, algo, 0x5eed, SleepHints::kOff);
}

TEST(StateLayout, PackedRunsLabelTraceAndCountPackedBytes) {
  // The trace layer labels each run with its layout and reports the
  // hot-byte volume: packed runs carry layout=2 (kPacked), nonzero
  // packed_state_bytes, and per-round packed_bytes scaled by
  // kHotBytes/sizeof(State); AoS runs carry layout=3 and zeros.
  // volume_bytes itself is semantic and must not depend on the layout.
  struct LayoutLog final : trace::TraceSink {
    std::uint8_t layout = 0;
    std::size_t packed_state_bytes = 0;
    std::uint64_t packed_bytes = 0;
    std::uint64_t volume_bytes = 0;
    void on_run_begin(const trace::RunInfo& info,
                      std::span<const char* const>) override {
      layout = info.layout;
      packed_state_bytes = info.packed_state_bytes;
    }
    void on_round(const trace::RoundEvent& e) override {
      packed_bytes += e.packed_bytes;
      volume_bytes += e.volume_bytes;
    }
  };
  const Graph g = gen::ring(512);
  const RingColoring3Algo algo(g.num_vertices());
  LayoutLog packed, aos;
  {
    trace::ScopedSink scoped(&packed);
    (void)run_local(g, algo, {.seed = 1, .layout = StateLayout::kPacked});
  }
  {
    trace::ScopedSink scoped(&aos);
    (void)run_local(g, algo, {.seed = 1, .layout = StateLayout::kAos});
  }
  EXPECT_EQ(packed.layout, static_cast<std::uint8_t>(StateLayout::kPacked));
  EXPECT_EQ(aos.layout, static_cast<std::uint8_t>(StateLayout::kAos));
  EXPECT_EQ(packed.packed_state_bytes, RingColoring3Algo::StatePack::kHotBytes);
  EXPECT_EQ(aos.packed_state_bytes, 0u);
  EXPECT_EQ(packed.volume_bytes, aos.volume_bytes)
      << "volume is semantic: layout must not change it";
  EXPECT_EQ(packed.packed_bytes,
            packed.volume_bytes / sizeof(RingColoring3Algo::State) *
                RingColoring3Algo::StatePack::kHotBytes);
  EXPECT_EQ(aos.packed_bytes, 0u);
}

TEST(StateLayout, ProcessWideDefaultIsInheritedAndOverridable) {
  const Graph g = gen::ring(256);
  const RingColoring3Algo algo(g.num_vertices());
  const auto ref =
      run_local(g, algo, {.seed = 1, .layout = StateLayout::kPacked});

  set_engine_state_layout(StateLayout::kAos);
  const auto inherited = run_local(g, algo, {.seed = 1});
  const auto overridden =
      run_local(g, algo, {.seed = 1, .layout = StateLayout::kPacked});
  set_engine_state_layout(StateLayout::kAuto);

  EXPECT_EQ(inherited.outputs, ref.outputs);
  EXPECT_EQ(overridden.outputs, ref.outputs);
  const auto back = run_local(g, algo, {.seed = 1});
  EXPECT_EQ(back.outputs, ref.outputs);
}

TEST(StateLayout, LayoutNamesRoundTrip) {
  for (const StateLayout layout :
       {StateLayout::kAuto, StateLayout::kPacked, StateLayout::kAos}) {
    const auto parsed = state_layout_from_name(state_layout_name(layout));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, layout);
  }
  EXPECT_FALSE(state_layout_from_name("bogus").has_value());
  EXPECT_FALSE(state_layout_from_name("").has_value());
}

}  // namespace
}  // namespace valocal
