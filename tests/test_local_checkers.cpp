#include "validate/local_checkers.hpp"

#include <gtest/gtest.h>

#include "algo/delta_plus1.hpp"
#include "algo/edge_coloring.hpp"
#include "algo/forest_decomposition.hpp"
#include "algo/matching.hpp"
#include "algo/mis.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(LocalCheckers, ColoringAgreesWithGlobal) {
  const Graph g = gen::forest_union(300, 3, 101);
  auto coloring = compute_delta_plus1(g, {.arboricity = 3}).color;
  auto verdict =
      locally_check_coloring(g, coloring, g.max_degree() + 1);
  EXPECT_TRUE(verdict.all_accept);

  // Corrupt one vertex: it and its clashing neighbor must both reject,
  // far-away vertices must still accept.
  const Vertex victim = 5;
  const Vertex neighbor = g.neighbors(victim)[0];
  coloring[victim] = coloring[neighbor];
  verdict = locally_check_coloring(g, coloring, g.max_degree() + 1);
  EXPECT_FALSE(verdict.all_accept);
  EXPECT_FALSE(verdict.accept[victim]);
  EXPECT_FALSE(verdict.accept[neighbor]);
  std::size_t rejecting = 0;
  for (bool a : verdict.accept) rejecting += !a;
  EXPECT_LE(rejecting, g.degree(victim) + g.degree(neighbor) + 2);
}

TEST(LocalCheckers, PaletteViolationIsLocal) {
  const Graph g = gen::path(4);
  const std::vector<int> coloring{0, 1, 0, 99};
  const auto verdict = locally_check_coloring(g, coloring, 3);
  EXPECT_FALSE(verdict.all_accept);
  EXPECT_FALSE(verdict.accept[3]);
  EXPECT_TRUE(verdict.accept[0]);
}

TEST(LocalCheckers, MisAgreesWithGlobal) {
  const Graph g = gen::forest_union(300, 2, 103);
  auto mis = compute_mis(g, {.arboricity = 2}).in_set;
  EXPECT_TRUE(locally_check_mis(g, mis).all_accept);

  // Remove a member: its non-dominated neighbors reject.
  Vertex member = 0;
  while (!mis[member]) ++member;
  mis[member] = false;
  const auto verdict = locally_check_mis(g, mis);
  EXPECT_FALSE(verdict.all_accept);
}

TEST(LocalCheckers, MatchingAgreesWithGlobal) {
  const Graph g = gen::forest_union(300, 2, 107);
  auto mm = compute_matching(g, {.arboricity = 2}).in_matching;
  EXPECT_TRUE(locally_check_matching(g, mm).all_accept);

  // Drop a matched edge: at least one endpoint now sees an addable edge
  // or an unmatched neighborhood.
  EdgeId matched = 0;
  while (!mm[matched]) ++matched;
  mm[matched] = false;
  EXPECT_FALSE(locally_check_matching(g, mm).all_accept);

  // Double-match a vertex: overmatched endpoint rejects.
  auto mm2 = compute_matching(g, {.arboricity = 2}).in_matching;
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    if (!mm2[e]) {
      mm2[e] = true;
      break;
    }
  EXPECT_FALSE(locally_check_matching(g, mm2).all_accept);
}

TEST(LocalCheckers, EdgeColoringAgreesWithGlobal) {
  const Graph g = gen::forest_union(200, 2, 109);
  auto ec = compute_edge_coloring(g, {.arboricity = 2});
  EXPECT_TRUE(
      locally_check_edge_coloring(g, ec.color, ec.palette_bound)
          .all_accept);

  // Clash two edges at vertex 0.
  const auto edges = g.incident_edges(0);
  if (edges.size() >= 2) {
    ec.color[edges[1]] = ec.color[edges[0]];
    EXPECT_FALSE(
        locally_check_edge_coloring(g, ec.color, ec.palette_bound)
            .all_accept);
  }
}

TEST(LocalCheckers, ForestLabelsAgreeWithGlobal) {
  const Graph g = gen::forest_union(200, 3, 113);
  auto fd = compute_forest_decomposition(g, {.arboricity = 3});
  EXPECT_TRUE(locally_check_forest_labels(
                  g, fd.decomposition.orientation, fd.decomposition.label,
                  fd.decomposition.num_forests)
                  .all_accept);

  // Duplicate an out-label at some vertex with >= 2 outgoing edges.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    std::vector<EdgeId> out;
    for (EdgeId e : g.incident_edges(v))
      if (fd.decomposition.orientation.tail(e) == v) out.push_back(e);
    if (out.size() >= 2) {
      fd.decomposition.label[out[1]] = fd.decomposition.label[out[0]];
      EXPECT_FALSE(locally_check_forest_labels(
                       g, fd.decomposition.orientation,
                       fd.decomposition.label,
                       fd.decomposition.num_forests)
                       .all_accept);
      break;
    }
  }
}

}  // namespace
}  // namespace valocal
