#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "util/cli.hpp"

namespace valocal {
namespace {

TEST(GraphIo, RoundTrip) {
  const Graph g = gen::forest_union(200, 3, 97);
  std::stringstream buffer;
  write_edge_list(buffer, g);
  const Graph back = read_edge_list(buffer);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_TRUE(back.has_edge(g.edge_u(e), g.edge_v(e)));
}

TEST(GraphIo, CommentsAndBlankLines) {
  std::stringstream in(
      "# a comment\n\n3 2\n# edges follow\n0 1\n\n1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(GraphIo, MalformedInputDies) {
  std::stringstream missing("3 5\n0 1\n");
  EXPECT_DEATH((void)read_edge_list(missing), "truncated");
  std::stringstream selfloop("2 1\n1 1\n");
  EXPECT_DEATH((void)read_edge_list(selfloop), "self-loop");
}

TEST(GraphIo, RejectsOutOfRangeAndNegativeIds) {
  // Regression: ids were extracted unsigned and unchecked, so "-1"
  // wrapped to 4294967295 and any id >= n corrupted the CSR build
  // far from the offending row. Each death message must carry the
  // 1-based line number of the bad row.
  std::stringstream big("3 2\n0 1\n1 7\n");
  EXPECT_DEATH((void)read_edge_list(big),
               "out of range.*at line 3");
  std::stringstream negative("3 1\n-1 2\n");
  EXPECT_DEATH((void)read_edge_list(negative),
               "negative vertex id.*at line 2");
  std::stringstream wraparound("3 1\n0 -4294967295\n");
  EXPECT_DEATH((void)read_edge_list(wraparound), "negative vertex id");
  std::stringstream garbage("3 1\n0 x\n");
  EXPECT_DEATH((void)read_edge_list(garbage),
               "malformed edge line.*at line 2");
}

TEST(GraphIo, WriteFailureDiesLoudly) {
  // Regression: write_edge_list never checked stream state, so a full
  // disk (or closed pipe) produced a silently truncated file.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full unavailable";
  const Graph g(3, {{0, 1}, {1, 2}});
  std::ofstream full("/dev/full");
  ASSERT_TRUE(full.good());
  EXPECT_DEATH(write_edge_list(full, g), "write failed");
  EXPECT_DEATH(save_edge_list("/dev/full", g), "write failed");
  EXPECT_DEATH(save_edge_list("/no/such/dir/out.txt", g), "cannot open");
}

TEST(GraphIo, DotOutputContainsEdgesAndColors) {
  const Graph g = gen::path(3);
  const std::vector<int> colors{0, 1, 0};
  std::stringstream out;
  write_dot(out, g, &colors);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);
}

TEST(Cli, ParsesFlagsAndPositionals) {
  // Note the parser's rule: "--flag token" binds the token as the
  // flag's value, so bare booleans must use "--flag=true" (or appear
  // last / before another flag).
  const char* argv[] = {"prog",          "--n",       "42", "--eps=1.5",
                        "--verbose=true", "input.txt", "--name", "ring"};
  CliArgs args(8, argv);
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("eps", 0.0), 1.5);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_string("name", ""), "ring");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "input.txt");
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_EQ(args.get_string("gen", "forest"), "forest");
  EXPECT_FALSE(args.has("n"));
}

TEST(Cli, MalformedNumberDies) {
  const char* argv[] = {"prog", "--n", "notanumber"};
  CliArgs args(3, argv);
  EXPECT_DEATH((void)args.get_int("n", 0), "malformed");
}

}  // namespace
}  // namespace valocal
