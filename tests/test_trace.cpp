// Trace-layer suite: the observability subsystem (src/trace/) must
// never perturb engine semantics, and its own semantic fields must obey
// the same determinism contract as the engines.
//
//   - Null observer: installing/uninstalling a sink leaves outputs and
//     Metrics byte-identical.
//   - Semantic run records (include_timing=false) are byte-identical
//     across every num_threads/grain combination.
//   - Per-phase charged counts partition the round-sum EXACTLY, for
//     every phase-annotated algorithm in the library.
//   - Emitted JSONL and Chrome-trace output is valid JSON (checked by a
//     self-contained recursive-descent parser, no dependencies).
//   - run_mailbox wall-clock parity and exact message accounting.
//   - ThreadPool worker-load counters total the processed indices.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <string_view>

#include "algo/coloring_a2.hpp"
#include "algo/coloring_a2logn.hpp"
#include "algo/coloring_ka.hpp"
#include "algo/coloring_ka2.hpp"
#include "algo/delta_plus1.hpp"
#include "algo/edge_coloring.hpp"
#include "algo/matching.hpp"
#include "algo/mis.hpp"
#include "algo/partition.hpp"
#include "graph/generators.hpp"
#include "sim/mailbox.hpp"
#include "sim/network.hpp"
#include "trace/collector.hpp"

namespace valocal {
namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON validator (syntax only). Good enough
// to catch unbalanced structure, bad escapes and trailing garbage in
// the emitters without adding a dependency.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r'))
      ++pos_;
  }
  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }
  bool string() {
    if (!consume('"')) return false;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (eof()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || std::isxdigit(
                             static_cast<unsigned char>(text_[pos_])) == 0)
              return false;
            ++pos_;
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }
  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_valid_json(std::string_view text) {
  return JsonValidator(text).valid();
}

// ---------------------------------------------------------------------

/// Asserts the exact decomposition invariants of one collected run
/// against the engine-reported Metrics.
void expect_exact_decomposition(const trace::RunRecord& run,
                                const Metrics& metrics,
                                const std::string& label) {
  EXPECT_EQ(run.round_sum, metrics.round_sum()) << label;
  EXPECT_EQ(run.worst_case, metrics.worst_case()) << label;
  EXPECT_EQ(run.rounds.size(), metrics.active_per_round.size()) << label;

  std::uint64_t charged_total = 0;
  for (std::size_t i = 0; i < run.rounds.size(); ++i) {
    const trace::RoundSample& r = run.rounds[i];
    EXPECT_EQ(r.active, metrics.active_per_round[i]) << label;
    charged_total += r.charged;
    if (!run.phase_names.empty()) {
      ASSERT_EQ(r.phase_charged.size(), run.phase_names.size()) << label;
      std::size_t phase_sum = 0;
      for (std::size_t c : r.phase_charged) phase_sum += c;
      EXPECT_EQ(phase_sum, r.charged)
          << label << " round " << r.round
          << ": phase counts must partition the charged count";
    }
  }
  // The load-bearing identity: sum of per-round charged counts IS the
  // round-sum, even under kCommit semantics.
  EXPECT_EQ(charged_total, metrics.round_sum()) << label;

  std::uint64_t phase_round_sum = 0;
  for (const trace::PhaseStats& s :
       trace::TraceCollector::phase_breakdown(run))
    phase_round_sum += s.round_sum;
  EXPECT_EQ(phase_round_sum, metrics.round_sum())
      << label << ": phase breakdown must total round_sum()";
}

TEST(Trace, NullObserverLeavesRunsIdentical) {
  const Graph g = gen::forest_union(600, 2, 9);
  const PartitionParams params{.arboricity = 2};
  const ColoringA2LogNAlgo algo(g.num_vertices(), params);

  const auto plain = run_local(g, algo);
  trace::TraceCollector collector;
  {
    trace::ScopedSink sink(&collector);
    const auto traced = run_local(g, algo);
    EXPECT_EQ(traced.outputs, plain.outputs);
    EXPECT_EQ(traced.metrics.rounds, plain.metrics.rounds);
    EXPECT_EQ(traced.metrics.active_per_round,
              plain.metrics.active_per_round);
  }
  EXPECT_EQ(trace::sink(), nullptr);
  ASSERT_EQ(collector.runs().size(), 1u);
}

TEST(Trace, SemanticRecordsIdenticalAcrossThreadsAndGrains) {
  const Graph g = gen::forest_union(800, 3, 21);
  const PartitionParams params{.arboricity = 3};
  const ColoringA2LogNAlgo algo(g.num_vertices(), params);

  auto semantic_record = [&](std::size_t threads, std::size_t grain) {
    trace::TraceCollector collector;
    trace::ScopedSink sink(&collector);
    run_local(g, algo, {.num_threads = threads, .grain = grain});
    std::ostringstream os;
    collector.write_run_records_jsonl(os, /*include_timing=*/false);
    return os.str();
  };

  const std::string reference = semantic_record(1, 0);
  ASSERT_FALSE(reference.empty());
  for (std::size_t threads : {1u, 2u, 8u}) {
    for (std::size_t grain : {1u, 3u, 64u}) {
      EXPECT_EQ(semantic_record(threads, grain), reference)
          << "threads=" << threads << " grain=" << grain;
    }
  }
}

TEST(Trace, PhaseRoundSumsPartitionRoundSumAcrossAlgorithms) {
  const Graph g = gen::forest_union(500, 2, 5);
  const PartitionParams params{.arboricity = 2};

  trace::TraceCollector collector;
  trace::ScopedSink sink(&collector);
  std::vector<std::pair<std::string, Metrics>> expected;

  expected.emplace_back("a2logn",
                        compute_coloring_a2logn(g, params).metrics);
  expected.emplace_back("mis", compute_mis(g, params).metrics);
  expected.emplace_back("delta_plus1",
                        compute_delta_plus1(g, params).metrics);
  expected.emplace_back("edge_coloring",
                        compute_edge_coloring(g, params).metrics);
  expected.emplace_back("matching", compute_matching(g, params).metrics);
  expected.emplace_back("ka",
                        compute_coloring_ka(g, params, 2).metrics);
  expected.emplace_back("ka2",
                        compute_coloring_ka2(g, params, 2).metrics);
  expected.emplace_back("a2", compute_coloring_a2(g, params).metrics);
  expected.emplace_back("partition",
                        compute_h_partition(g, params).metrics);

  ASSERT_EQ(collector.runs().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const trace::RunRecord& run = collector.runs()[i];
    EXPECT_EQ(run.span, expected[i].first);
    EXPECT_FALSE(run.phase_names.empty()) << expected[i].first;
    expect_exact_decomposition(run, expected[i].second,
                               expected[i].first);
  }
}

TEST(Trace, SegmentedAlgorithmsNamePhasesPerSegment) {
  const ColoringKaAlgo algo(500, PartitionParams{.arboricity = 2}, 2);
  const auto phases = algo.trace_phases();
  ASSERT_EQ(phases.size(), 6u);  // 2 segments x {partition, plan, recolor}
  EXPECT_STREQ(phases[0], "seg2.partition");
  EXPECT_STREQ(phases[2], "seg2.recolor");
  EXPECT_STREQ(phases[3], "seg1.partition");
}

TEST(Trace, EmittedJsonIsValid) {
  const Graph g = gen::erdos_renyi(400, 4.0, 3);
  const PartitionParams params{.arboricity = 4};

  trace::TraceCollector collector;
  collector.set_context("algo", "mis");
  collector.set_context("quote\"key", "line\nbreak");
  {
    trace::ScopedSink sink(&collector);
    compute_mis(g, params);
    compute_delta_plus1(g, params);
  }

  std::ostringstream jsonl;
  collector.write_run_records_jsonl(jsonl);
  std::size_t lines = 0;
  std::istringstream in(jsonl.str());
  for (std::string line; std::getline(in, line);) {
    ++lines;
    EXPECT_TRUE(is_valid_json(line)) << "JSONL line " << lines;
  }
  EXPECT_EQ(lines, 2u);

  std::ostringstream semantic;
  collector.write_run_records_jsonl(semantic, /*include_timing=*/false);
  EXPECT_EQ(semantic.str().find("wall_ns"), std::string::npos);
  EXPECT_EQ(semantic.str().find("threads"), std::string::npos);

  std::ostringstream chrome;
  collector.write_chrome_trace(chrome);
  EXPECT_TRUE(is_valid_json(chrome.str()));
  EXPECT_NE(chrome.str().find("\"traceEvents\""), std::string::npos);
}

TEST(Trace, ValidatorRejectsMalformedJson) {
  EXPECT_TRUE(is_valid_json("{\"a\":[1,2,{\"b\":null}]}"));
  EXPECT_FALSE(is_valid_json("{\"a\":1,}"));
  EXPECT_FALSE(is_valid_json("{\"a\":1} trailing"));
  EXPECT_FALSE(is_valid_json("[1,2"));
  EXPECT_FALSE(is_valid_json("{\"a\" 1}"));
}

// --- Mailbox engine ---------------------------------------------------

/// Procedure Partition over explicit messages (mirrors test_mailbox).
struct MailboxPartition {
  PartitionParams params;

  struct State {
    std::size_t active_nbrs = 0;
    std::int32_t hset = 0;
  };
  struct Message {};
  using Output = std::int32_t;

  void init(Vertex v, const Graph& g, State& s, Outbox<Message>&) const {
    s.active_nbrs = g.degree(v);
  }

  bool step(Vertex, std::size_t round, const Inbox<Message>& in,
            State& s, Outbox<Message>& out, Xoshiro256&) const {
    s.active_nbrs -= in.size();
    if (s.active_nbrs <= params.threshold()) {
      s.hset = static_cast<std::int32_t>(round);
      out.broadcast({});
      return true;
    }
    return false;
  }

  Output output(Vertex, const State& s) const { return s.hset; }
};

TEST(Trace, MailboxRecordsRoundWallClock) {
  // Regression: run_mailbox used to leave round_wall_ns empty, so
  // total_wall_ns() reported 0 for every mailbox run.
  const Graph g = gen::forest_union(300, 2, 17);
  const auto r = run_mailbox(g, MailboxPartition{{.arboricity = 2}});
  EXPECT_EQ(r.metrics.round_wall_ns.size(),
            r.metrics.active_per_round.size());
  ASSERT_FALSE(r.metrics.round_wall_ns.empty());
}

TEST(Trace, MailboxMessageAccountingIsExact) {
  const Graph g = gen::forest_union(300, 2, 17);

  trace::TraceCollector collector;
  MailboxRunResult<MailboxPartition> result;
  {
    trace::ScopedSink sink(&collector);
    result = run_mailbox(g, MailboxPartition{{.arboricity = 2}});
  }
  ASSERT_EQ(collector.runs().size(), 1u);
  const trace::RunRecord& run = collector.runs().front();
  EXPECT_EQ(run.engine, "mailbox");
  EXPECT_EQ(run.messages, result.messages_sent);

  // Every vertex broadcasts exactly once (on termination), so the run
  // total is sum of degrees = 2m; per-round deltas must add up to it
  // (this algorithm pre-sends nothing in init).
  EXPECT_EQ(result.messages_sent, 2 * g.num_edges());
  std::uint64_t per_round = 0;
  for (const trace::RoundSample& r : run.rounds) {
    per_round += r.messages;
    EXPECT_EQ(r.volume_bytes,
              r.messages * sizeof(MailboxPartition::Message));
    EXPECT_EQ(r.charged, r.active);  // terminate-only engine
  }
  EXPECT_EQ(per_round, result.messages_sent);
  expect_exact_decomposition(run, result.metrics, "mailbox");
}

// --- Worker-load counters ---------------------------------------------

TEST(Trace, WorkerLoadCountersTotalTheProcessedIndices) {
  const Graph g = gen::erdos_renyi(900, 5.0, 29);
  const ColoringA2LogNAlgo algo(g.num_vertices(),
                                PartitionParams{.arboricity = 4});

  trace::TraceCollector collector;
  trace::ScopedSink sink(&collector);
  const auto run = run_local(g, algo, {.num_threads = 4, .grain = 32});

  ASSERT_EQ(collector.runs().size(), 1u);
  const trace::RunRecord& record = collector.runs().front();
  EXPECT_EQ(record.num_threads, 4u);
  ASSERT_FALSE(record.worker_indices.empty());

  std::uint64_t indices = 0;
  for (std::uint64_t i : record.worker_indices) indices += i;
  std::uint64_t stepped = 0;
  for (std::size_t a : run.metrics.active_per_round) stepped += a;
  EXPECT_EQ(indices, stepped);
}

TEST(Trace, PhaseSpansNestIntoPaths) {
  trace::TraceCollector collector;
  trace::ScopedSink sink(&collector);
  const Graph g = gen::forest_union(200, 1, 3);
  {
    VALOCAL_TRACE_PHASE("outer");
    compute_h_partition(g, {.arboricity = 1});
  }
  ASSERT_EQ(collector.runs().size(), 1u);
  EXPECT_EQ(collector.runs().front().span, "outer/partition");
}

}  // namespace
}  // namespace valocal
