#include "algo/defective_coloring.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(ArbdefectiveColoring, ClassArboricityWithinBound) {
  const Graph g = gen::erdos_renyi(500, 8.0, 151);
  for (std::size_t colors : {2u, 4u, 8u}) {
    const auto result =
        compute_arbdefective_coloring(g, {.colors = colors});
    EXPECT_LE(result.num_colors, colors);
    // Each class carries an acyclic orientation of out-degree
    // <= floor(D/k), hence class degeneracy <= that bound.
    EXPECT_LE(coloring_arbdefect_ub(g, result.color),
              arbdefective_class_bound(g.max_degree(), colors))
        << colors;
  }
}

TEST(ArbdefectiveColoring, MoreColorsThanDegreeMeansProper) {
  // k > D: every vertex finds a bucket unused by its parents, so each
  // class is an independent set — a proper coloring.
  const Graph g = gen::forest_union(300, 2, 157);
  const auto result = compute_arbdefective_coloring(
      g, {.colors = g.max_degree() + 1});
  EXPECT_TRUE(is_proper_coloring(g, result.color));
}

TEST(ArbdefectiveColoring, OneColorIsTheWholeGraph) {
  const Graph g = gen::ring(20);
  const auto result = compute_arbdefective_coloring(g, {.colors = 1});
  EXPECT_EQ(result.num_colors, 1u);
  EXPECT_LE(coloring_arbdefect_ub(g, result.color), 2u);
}

TEST(ArbdefectiveColoring, SweepTerminatesHighAuxEarly) {
  // Vertices terminate at their own descending slot: the average is
  // strictly below the worst case on any graph with spread-out aux.
  const Graph g = gen::erdos_renyi(800, 6.0, 163);
  const auto result = compute_arbdefective_coloring(g, {.colors = 3});
  EXPECT_LT(result.metrics.vertex_averaged(),
            static_cast<double>(result.metrics.worst_case()));
}

TEST(ArbdefectiveColoring, RoundsTrackDegreeBoundNotN) {
  // Same topology family with the same fixed degree bound: rounds are
  // a function of (D, log* n) only.
  const auto small = compute_arbdefective_coloring(
      gen::dary_tree(512, 3), {.colors = 2, .degree_bound = 8});
  const auto large = compute_arbdefective_coloring(
      gen::dary_tree(16384, 3), {.colors = 2, .degree_bound = 8});
  EXPECT_LE(large.metrics.worst_case(),
            small.metrics.worst_case() + 4);
}

class ArbdefectiveSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(ArbdefectiveSweep, BoundHolds) {
  const auto [n, a, colors] = GetParam();
  const Graph g = gen::forest_union(n, a, n + a + colors);
  const auto result = compute_arbdefective_coloring(g, {.colors = colors});
  EXPECT_LE(coloring_arbdefect_ub(g, result.color),
            arbdefective_class_bound(g.max_degree(), colors));
  EXPECT_LE(result.num_colors, colors);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArbdefectiveSweep,
    ::testing::Combine(::testing::Values(128, 512),
                       ::testing::Values(2, 4),
                       ::testing::Values(1, 2, 5, 9)));

}  // namespace
}  // namespace valocal
