#include "algo/kw_reduce.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "algo/deg_plus_one_plan.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

// Centralized synchronous simulation of a KW plan: every vertex runs
// every round (double-buffered), starting from the given proper colors.
std::vector<std::uint64_t> simulate_kw(const Graph& g,
                                       const KwReduction& kw,
                                       std::vector<std::uint64_t> color) {
  for (std::size_t t = 0; t < kw.num_rounds(); ++t) {
    std::vector<std::uint64_t> next(color.size());
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      std::vector<std::uint64_t> nbrs;
      for (Vertex u : g.neighbors(v)) nbrs.push_back(color[u]);
      next[v] = kw.advance(t, color[v], nbrs);
    }
    color = std::move(next);
  }
  return color;
}

std::vector<int> to_int(const std::vector<std::uint64_t>& c) {
  return {c.begin(), c.end()};
}

TEST(KwReduction, NoRoundsWhenAlreadySmall) {
  const KwReduction kw(4, 5);
  EXPECT_EQ(kw.num_rounds(), 0u);
  EXPECT_EQ(kw.final_palette(), 4u);
}

TEST(KwReduction, RoundCountIsKLogMoverK) {
  const std::size_t k = 7;
  const KwReduction kw(1024, k);
  // Each halving phase costs k+1 rounds; ~log2(1024/8) = 7 phases.
  EXPECT_LE(kw.num_rounds(), (k + 1) * 9);
  EXPECT_GE(kw.num_rounds(), (k + 1) * 3);
}

TEST(KwReduction, ReducesIdsToDeltaPlusOneOnRing) {
  const Graph g = gen::ring(100);
  const KwReduction kw(100, g.max_degree());
  std::vector<std::uint64_t> ids(100);
  for (Vertex v = 0; v < 100; ++v) ids[v] = v;
  const auto final = simulate_kw(g, kw, ids);
  const auto color = to_int(final);
  EXPECT_TRUE(is_proper_coloring(g, color));
  for (auto c : final) EXPECT_LT(c, g.max_degree() + 1);
}

TEST(KwReduction, ProperAfterEveryRound) {
  const Graph g = gen::erdos_renyi(150, 6.0, 2);
  const std::size_t k = g.max_degree();
  const KwReduction kw(150, k);
  std::vector<std::uint64_t> color(150);
  for (Vertex v = 0; v < 150; ++v) color[v] = v;
  for (std::size_t t = 0; t < kw.num_rounds(); ++t) {
    std::vector<std::uint64_t> next(color.size());
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      std::vector<std::uint64_t> nbrs;
      for (Vertex u : g.neighbors(v)) nbrs.push_back(color[u]);
      next[v] = kw.advance(t, color[v], nbrs);
    }
    color = std::move(next);
    EXPECT_TRUE(is_proper_coloring(g, to_int(color))) << "round " << t;
  }
  for (auto c : color) EXPECT_LE(c, k);
}

class KwSweep : public ::testing::TestWithParam<
                    std::tuple<std::size_t, double, std::uint64_t>> {};

TEST_P(KwSweep, AlwaysProperAndTight) {
  const auto [n, avg_deg, seed] = GetParam();
  const Graph g = gen::erdos_renyi(n, avg_deg, seed);
  const std::size_t k = std::max<std::size_t>(1, g.max_degree());
  const KwReduction kw(n, k);
  std::vector<std::uint64_t> ids(n);
  for (Vertex v = 0; v < n; ++v) ids[v] = v;
  const auto final = simulate_kw(g, kw, ids);
  EXPECT_TRUE(is_proper_coloring(g, to_int(final)));
  for (auto c : final) EXPECT_LE(c, k);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KwSweep,
    ::testing::Combine(::testing::Values(50, 200, 800),
                       ::testing::Values(2.0, 5.0, 10.0),
                       ::testing::Values(1, 2, 3)));

TEST(DegPlusOnePlan, ColorsArbitraryGraphWithDeltaPlusOne) {
  for (std::uint64_t seed : {1ULL, 7ULL}) {
    const Graph g = gen::erdos_renyi(300, 7.0, seed);
    const std::size_t d = std::max<std::size_t>(1, g.max_degree());
    const DegPlusOnePlan plan(300, d);
    std::vector<std::uint64_t> color(300);
    for (Vertex v = 0; v < 300; ++v) color[v] = v;
    for (std::size_t t = 0; t < plan.num_rounds(); ++t) {
      std::vector<std::uint64_t> next(color.size());
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        std::vector<std::uint64_t> nbrs;
        for (Vertex u : g.neighbors(v)) nbrs.push_back(color[u]);
        next[v] = plan.advance(t, color[v], nbrs);
      }
      color = std::move(next);
    }
    EXPECT_TRUE(is_proper_coloring(g, to_int(color)));
    for (auto c : color) EXPECT_LT(c, plan.palette());
  }
}

TEST(DegPlusOnePlan, RoundCountScalesWithDNotN) {
  // log* n term only: for fixed D, doubling n barely changes rounds.
  const DegPlusOnePlan small(1 << 10, 8);
  const DegPlusOnePlan large(1 << 20, 8);
  EXPECT_LE(large.num_rounds(), small.num_rounds() + 4);
}

}  // namespace
}  // namespace valocal
