#include "algo/partition.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "graph/arboricity.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(Partition, RingPartitionsInOneRound) {
  // Every ring vertex has degree 2 <= A = threshold(a=2) >= 5, so all
  // join H_1 immediately.
  const auto result =
      compute_h_partition(gen::ring(20), {.arboricity = 2});
  EXPECT_EQ(result.num_sets, 1u);
  EXPECT_TRUE(is_h_partition(gen::ring(20), result.hset, result.threshold));
  EXPECT_EQ(result.metrics.worst_case(), 1u);
}

TEST(Partition, HPartitionPropertyHolds) {
  for (std::size_t a : {1u, 2u, 4u}) {
    for (double eps : {0.5, 1.0, 2.0}) {
      const Graph g = gen::forest_union(400, a, 17);
      const auto result =
          compute_h_partition(g, {.arboricity = a, .epsilon = eps});
      EXPECT_TRUE(is_h_partition(g, result.hset, result.threshold))
          << "a=" << a << " eps=" << eps;
    }
  }
}

TEST(Partition, EveryVertexJoins) {
  const Graph g = gen::erdos_renyi(1000, 4.0, 3);
  const std::size_t a = arboricity_upper_bound(g);
  const auto result = compute_h_partition(g, {.arboricity = a});
  for (auto h : result.hset) EXPECT_GE(h, 1);
}

TEST(Partition, WorstCaseIsLogarithmic) {
  // Number of H-sets is at most log_{(2+eps)/2} n + O(1).
  for (std::size_t n : {256u, 1024u, 4096u}) {
    const Graph g = gen::forest_union(n, 2, 5);
    const auto result =
        compute_h_partition(g, {.arboricity = 2, .epsilon = 1.0});
    const double bound = std::log(static_cast<double>(n)) /
                             std::log((2.0 + 1.0) / 2.0) + 2.0;
    EXPECT_LE(static_cast<double>(result.metrics.worst_case()), bound)
        << n;
  }
}

TEST(Partition, Lemma61Decay) {
  // n_i <= (2/(2+eps))^(i-1) * n for every round i.
  const std::size_t n = 4096;
  const double eps = 1.0;
  const Graph g = gen::forest_union(n, 3, 23);
  const auto result =
      compute_h_partition(g, {.arboricity = 3, .epsilon = eps});
  const double ratio = 2.0 / (2.0 + eps);
  double bound = static_cast<double>(n);
  for (std::size_t i = 0; i < result.metrics.active_per_round.size();
       ++i) {
    EXPECT_LE(static_cast<double>(result.metrics.active_per_round[i]),
              bound + 1e-9)
        << "round " << i + 1;
    bound *= ratio;
  }
}

TEST(Partition, Theorem63VertexAveragedIsConstant) {
  // RoundSum = O(n): the geometric series gives sum <= n*(2+eps)/eps.
  for (std::size_t n : {512u, 2048u, 8192u}) {
    const double eps = 1.0;
    const Graph g = gen::forest_union(n, 2, 9);
    const auto result =
        compute_h_partition(g, {.arboricity = 2, .epsilon = eps});
    EXPECT_LE(result.metrics.vertex_averaged(), (2.0 + eps) / eps + 1.0)
        << n;
  }
}

TEST(Partition, ThresholdFloor) {
  // threshold is at least 2a+1 even for tiny epsilon * a.
  PartitionParams p{.arboricity = 1, .epsilon = 0.1};
  EXPECT_GE(p.threshold(), 3u);
  PartitionParams q{.arboricity = 5, .epsilon = 2.0};
  EXPECT_EQ(q.threshold(), 20u);
}

TEST(Partition, StarGraph) {
  // Leaves (degree 1) join H_1; the center joins H_2 once leaves left.
  const Graph g = gen::star(100);
  const auto result = compute_h_partition(g, {.arboricity = 1});
  EXPECT_EQ(result.hset[0], 2);
  for (Vertex v = 1; v < 100; ++v) EXPECT_EQ(result.hset[v], 1);
}

class PartitionFamilies
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(PartitionFamilies, PropertySweep) {
  const auto [n, a] = GetParam();
  const Graph g = gen::forest_union(n, a, n + a);
  const auto result = compute_h_partition(g, {.arboricity = a});
  EXPECT_TRUE(is_h_partition(g, result.hset, result.threshold));
  EXPECT_LE(result.metrics.vertex_averaged(), 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionFamilies,
    ::testing::Combine(::testing::Values(64, 256, 1024, 4096),
                       ::testing::Values(1, 2, 3, 5, 8)));

}  // namespace
}  // namespace valocal
