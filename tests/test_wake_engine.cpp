// Wake-scheduled engine contract tests: for every hinted algorithm,
// turning sleep hints on must leave the run byte-identical to the
// unhinted engine — outputs, r(v), active_per_round, and the semantic
// trace event stream — for every threads x grain combination, while
// Metrics::skipped_steps records the simulator work actually saved.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "algo/coloring_ka.hpp"
#include "algo/coloring_ka2.hpp"
#include "algo/hset_composition.hpp"
#include "algo/partition.hpp"
#include "algo/rings.hpp"
#include "graph/generators.hpp"
#include "sim/network.hpp"
#include "sim/wake_calendar.hpp"
#include "trace/trace.hpp"

namespace valocal {
namespace {

// Deterministic per-H-set subroutine: a fixed budget of same-set
// mixing rounds. Every output bit depends on every preceding round's
// neighborhood, so a single mis-skipped step changes the bytes.
struct MixSub {
  struct State {
    std::uint64_t x = 1;
  };
  using Output = std::uint64_t;

  std::size_t budget = 6;

  std::size_t sub_rounds() const { return budget; }

  bool step(Vertex v, std::size_t t, const SubView<State>& view,
            State& next, Xoshiro256&) const {
    std::uint64_t mix = next.x * 0x9e3779b97f4a7c15ULL + v + t;
    for (std::size_t i = 0; i < view.degree(); ++i)
      if (view.same_set(i)) mix += view.neighbor_state(i).x;
    next.x = mix;
    return false;
  }

  Output output(Vertex, const State& s) const { return s.x; }

  static constexpr bool uses_rng = false;
};

// RNG-drawing subroutine with coin-flip early termination: the final
// bytes encode the exact per-vertex RNG stream positions, so wake
// scheduling must preserve the streams bit-for-bit to pass.
struct CoinSub {
  struct State {
    std::uint64_t x = 0;
  };
  using Output = std::uint64_t;

  std::size_t budget = 8;

  std::size_t sub_rounds() const { return budget; }

  bool step(Vertex, std::size_t, const SubView<State>& view, State& next,
            Xoshiro256& rng) const {
    std::uint64_t mix = next.x;
    for (std::size_t i = 0; i < view.degree(); ++i)
      if (view.same_set(i))
        mix = mix * 0x9e3779b97f4a7c15ULL + view.neighbor_state(i).x;
    next.x = mix ^ rng();
    return (rng() & 3) == 0;  // early exit w.p. 1/4 per sub-round
  }

  Output output(Vertex, const State& s) const { return s.x; }
};

// The trait plumbing the engine dispatches on, pinned at compile time.
static_assert(WakeHinted<HSetComposition<MixSub>>);
static_assert(WakeHinted<HSetComposition<CoinSub>>);
static_assert(WakeHinted<ColoringKaAlgo>);
static_assert(WakeHinted<ColoringKa2Algo>);
static_assert(WakeHinted<RingColoring3Algo>);
static_assert(WakeHinted<PartitionAlgo>);
static_assert(!WakeHinted<LeaderElectionAlgo>);
static_assert(!algorithm_uses_rng<HSetComposition<MixSub>>);
static_assert(algorithm_uses_rng<HSetComposition<CoinSub>>);
static_assert(!algorithm_uses_rng<ColoringKaAlgo>);

/// Serializes the SEMANTIC trace fields (everything the determinism
/// contract covers; no wall-clock, no worker load, no asleep split):
/// log equality means hinted and unhinted engines are observationally
/// identical to any tooling built on the trace layer.
struct SemanticLog final : trace::TraceSink {
  std::ostringstream log;

  void on_run_begin(const trace::RunInfo& info,
                    std::span<const char* const> phases) override {
    log << "begin " << info.engine << " n=" << info.num_vertices
        << " seed=" << info.seed << " phases=" << phases.size() << "\n";
  }
  void on_round(const trace::RoundEvent& e) override {
    log << "round " << e.round << " active=" << e.active
        << " charged=" << e.charged << " committed=" << e.committed
        << " terminated=" << e.terminated << " vol=" << e.volume_bytes;
    for (std::size_t p : e.phase_charged) log << " p" << p;
    log << "\n";
  }
  void on_run_end(const trace::RunEndEvent& e) override {
    log << "end rounds=" << e.rounds << " sum=" << e.round_sum
        << " wc=" << e.worst_case << "\n";
  }
};

template <class A>
std::string traced_log(const Graph& g, const A& algo, RunOptions opt) {
  SemanticLog log;
  {
    trace::ScopedSink scoped(&log);
    (void)run_local(g, algo, opt);
  }
  return log.log.str();
}

/// The core equivalence sweep: unhinted reference vs hinted runs for
/// threads {1,2,4} x grain {1,5,64}. Returns the hinted runs'
/// skipped_steps (identical across all combinations by construction).
template <class A>
std::uint64_t expect_hint_equivalence(const Graph& g, const A& algo,
                                      std::uint64_t seed) {
  const RunOptions off{.seed = seed, .sleep_hints = SleepHints::kOff};
  const auto ref = run_local(g, algo, off);
  EXPECT_EQ(ref.metrics.skipped_steps, 0u)
      << "hints off must never skip a step";
  const std::string ref_log = traced_log(g, algo, off);
  EXPECT_FALSE(ref_log.empty());

  std::uint64_t skipped = 0;
  bool first = true;
  for (std::size_t threads : {1u, 2u, 4u}) {
    for (std::size_t grain : {1u, 5u, 64u}) {
      const RunOptions on{.seed = seed,
                          .num_threads = threads,
                          .grain = grain,
                          .sleep_hints = SleepHints::kOn};
      const auto hinted = run_local(g, algo, on);
      const std::string what = "threads=" + std::to_string(threads) +
                               " grain=" + std::to_string(grain);
      EXPECT_EQ(hinted.outputs, ref.outputs) << what;
      EXPECT_EQ(hinted.metrics.rounds, ref.metrics.rounds) << what;
      EXPECT_EQ(hinted.metrics.active_per_round,
                ref.metrics.active_per_round)
          << what;
      EXPECT_EQ(traced_log(g, algo, on), ref_log) << what;
      if (first) {
        skipped = hinted.metrics.skipped_steps;
        first = false;
      } else {
        EXPECT_EQ(hinted.metrics.skipped_steps, skipped)
            << what << ": skipped_steps must be schedule-independent";
      }
    }
  }
  return skipped;
}

TEST(WakeEngine, CompositionWithDeterministicSubIsByteIdentical) {
  const PartitionParams params{.arboricity = 1, .epsilon = 1.0};
  for (const Graph& g :
       {gen::dary_tree(1500, 4), gen::forest_union(900, 2, 11)}) {
    const HSetComposition<MixSub> algo(g.num_vertices(), params,
                                       MixSub{});
    const auto skipped = expect_hint_equivalence(g, algo, 0x5eed);
    EXPECT_GT(skipped, 0u)
        << "composition blocks must actually park idle vertices";
  }
}

TEST(WakeEngine, CompositionWithRngSubPreservesStreamsAcrossSeeds) {
  const PartitionParams params{.arboricity = 2, .epsilon = 1.0};
  const Graph g = gen::forest_union(700, 2, 29);
  const HSetComposition<CoinSub> algo(g.num_vertices(), params,
                                      CoinSub{});
  for (std::uint64_t seed : {1u, 77u, 4242u, 999983u}) {
    const auto skipped = expect_hint_equivalence(g, algo, seed);
    EXPECT_GT(skipped, 0u) << "seed=" << seed;
  }
}

TEST(WakeEngine, ColoringKaIsByteIdentical) {
  const PartitionParams params{.arboricity = 2, .epsilon = 1.0};
  const Graph g = gen::forest_union(800, 2, 5);
  const ColoringKaAlgo algo(g.num_vertices(), params, 2);
  const auto skipped = expect_hint_equivalence(g, algo, 0x5eed);
  EXPECT_GT(skipped, 0u);
}

TEST(WakeEngine, ColoringKa2IsByteIdentical) {
  const PartitionParams params{.arboricity = 2, .epsilon = 1.0};
  const Graph g = gen::forest_union(800, 2, 13);
  const ColoringKa2Algo algo(g.num_vertices(), params, 2);
  const auto skipped = expect_hint_equivalence(g, algo, 0x5eed);
  EXPECT_GT(skipped, 0u);
}

TEST(WakeEngine, RingColoring3IsByteIdentical) {
  const Graph g = gen::ring(512);
  const RingColoring3Algo algo(g.num_vertices());
  // Colors 0..2 sleep through the retirement slots, so some vertex
  // parks in every non-degenerate run.
  const auto skipped = expect_hint_equivalence(g, algo, 0x5eed);
  EXPECT_GT(skipped, 0u);
}

TEST(WakeEngine, TrivialHintsNeverPark) {
  // Procedure Partition's hint is necessarily round + 1 (the join
  // decision is data-dependent every round): the hinted path must run
  // with an empty calendar and still be byte-identical.
  const PartitionParams params{.arboricity = 1, .epsilon = 1.0};
  const Graph g = gen::dary_tree(1200, 4);
  const PartitionAlgo algo(params);
  const auto skipped = expect_hint_equivalence(g, algo, 0x5eed);
  EXPECT_EQ(skipped, 0u);
}

TEST(WakeEngine, ProcessWideDefaultIsInheritedAndOverridable) {
  const PartitionParams params{.arboricity = 1, .epsilon = 1.0};
  const Graph g = gen::dary_tree(600, 4);
  const HSetComposition<MixSub> algo(g.num_vertices(), params, MixSub{});

  const auto off = run_local(g, algo, {.sleep_hints = SleepHints::kOff});
  set_engine_sleep_hints(true);
  const auto inherited = run_local(g, algo, {});  // kInherit
  const auto forced_off =
      run_local(g, algo, {.sleep_hints = SleepHints::kOff});
  set_engine_sleep_hints(false);
  const auto back_off = run_local(g, algo, {});  // kInherit, now off

  EXPECT_GT(inherited.metrics.skipped_steps, 0u);
  EXPECT_EQ(forced_off.metrics.skipped_steps, 0u);
  EXPECT_EQ(back_off.metrics.skipped_steps, 0u);
  EXPECT_EQ(inherited.outputs, off.outputs);
  EXPECT_EQ(inherited.metrics.rounds, off.metrics.rounds);
  EXPECT_EQ(forced_off.outputs, off.outputs);
}

TEST(WakeEngine, ToggleIsInertForUnhintedAlgorithms) {
  // LeaderElectionAlgo declares no next_wake: kOn must compile down to
  // the plain engine (calendar never consulted, nothing skipped).
  const Graph g = gen::ring(64);
  const LeaderElectionAlgo algo;
  const auto off = run_local(g, algo, {.sleep_hints = SleepHints::kOff});
  const auto on = run_local(g, algo, {.sleep_hints = SleepHints::kOn});
  EXPECT_EQ(on.outputs, off.outputs);
  EXPECT_EQ(on.metrics.rounds, off.metrics.rounds);
  EXPECT_EQ(on.metrics.active_per_round, off.metrics.active_per_round);
  EXPECT_EQ(on.metrics.skipped_steps, 0u);
}

TEST(WakeCalendar, PopsSortedBucketsAndTracksSleepers) {
  WakeCalendar cal;
  cal.reset(1);
  EXPECT_EQ(cal.sleeping(), 0u);

  cal.schedule(9, 3);
  cal.schedule(2, 3);
  cal.schedule(5, 2);
  cal.schedule(7, 3);
  EXPECT_EQ(cal.sleeping(), 4u);

  std::size_t visited = 0;
  cal.for_each_sleeping([&](Vertex) { ++visited; });
  EXPECT_EQ(visited, 4u);

  EXPECT_TRUE(cal.take(1).empty());
  EXPECT_EQ(cal.take(2), (std::vector<Vertex>{5}));
  EXPECT_EQ(cal.sleeping(), 3u);
  EXPECT_EQ(cal.take(3), (std::vector<Vertex>{2, 7, 9}));
  EXPECT_EQ(cal.sleeping(), 0u);
  EXPECT_TRUE(cal.take(4).empty());
}

TEST(WakeCalendar, CompactionKeepsLongRunsBounded) {
  // A long run with a short wake horizon: every round parks one vertex
  // two rounds out. Compaction must keep this correct indefinitely.
  WakeCalendar cal;
  cal.reset(1);
  for (std::size_t round = 1; round <= 1000; ++round) {
    const auto& woken = cal.take(round);
    if (round > 2) {
      ASSERT_EQ(woken.size(), 1u) << "round " << round;
      EXPECT_EQ(woken[0], static_cast<Vertex>(round - 2));
    }
    cal.schedule(static_cast<Vertex>(round), round + 2);
  }
  EXPECT_EQ(cal.sleeping(), 2u);
}

TEST(WakeCalendar, InterleavedRunsPopSorted) {
  // Several scheduling rounds target the same buckets, each appending
  // an ascending subsequence (the engine's chunk-order barrier always
  // appends ascending within one round). take() must fold the recorded
  // runs back into one ascending sequence with the exact multiset.
  WakeCalendar cal;
  cal.reset(1);
  const std::size_t waves = 5, span = 7, n = 200;
  for (std::size_t w = 0; w < waves; ++w)
    for (Vertex v = static_cast<Vertex>(w); v < n;
         v += static_cast<Vertex>(waves))
      cal.schedule(v, 2 + (v % span));
  EXPECT_EQ(cal.sleeping(), n);

  std::vector<bool> seen(n, false);
  for (std::size_t round = 1; round <= 1 + span; ++round) {
    const auto& woken = cal.take(round);
    EXPECT_TRUE(std::is_sorted(woken.begin(), woken.end()))
        << "round " << round;
    for (const Vertex v : woken) {
      EXPECT_EQ(v % span, round - 2) << "vertex in wrong bucket";
      EXPECT_FALSE(seen[v]) << "vertex popped twice";
      seen[v] = true;
    }
  }
  EXPECT_EQ(cal.sleeping(), 0u);
  for (Vertex v = 0; v < n; ++v) EXPECT_TRUE(seen[v]) << "lost " << v;
}

TEST(WakeCalendar, ResetClearsPendingWakes) {
  WakeCalendar cal;
  cal.reset(1);
  cal.schedule(1, 5);
  cal.schedule(2, 9);
  cal.reset(1);
  EXPECT_EQ(cal.sleeping(), 0u);
  for (std::size_t round = 1; round <= 10; ++round)
    EXPECT_TRUE(cal.take(round).empty()) << "round " << round;
}

}  // namespace
}  // namespace valocal
