#include "graph/relabel.hpp"

#include <gtest/gtest.h>

#include "algo/coloring_a2logn.hpp"
#include "algo/mis.hpp"
#include "algo/partition.hpp"
#include "algo/rings.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(Relabel, PreservesStructure) {
  const Graph g = gen::forest_union(150, 3, 137);
  const auto perm = random_permutation(150, 5);
  const Graph h = relabel(g, perm);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.max_degree(), g.max_degree());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_TRUE(h.has_edge(perm[g.edge_u(e)], perm[g.edge_v(e)]));
}

TEST(Relabel, RejectsNonPermutations) {
  const Graph g = gen::path(3);
  EXPECT_DEATH((void)relabel(g, {0, 0, 1}), "permutation");
  EXPECT_DEATH((void)relabel(g, {0, 1}), "size mismatch");
}

TEST(Relabel, BitReversalIsAPermutation) {
  const auto perm = bit_reversal_permutation(5);
  std::vector<char> seen(32, 0);
  for (Vertex p : perm) {
    ASSERT_LT(p, 32u);
    EXPECT_FALSE(seen[p]);
    seen[p] = 1;
  }
  EXPECT_EQ(perm[1], 16u);  // 00001 -> 10000
}

TEST(AdversarialIds, GuaranteesHoldUnderEveryRelabeling) {
  // Deterministic outputs depend on IDs; correctness must not.
  const Graph base = gen::forest_union(300, 2, 139);
  const PartitionParams params{.arboricity = 2};
  for (std::uint64_t s = 0; s < 6; ++s) {
    const Graph g = relabel(base, random_permutation(300, s));
    const auto part = compute_h_partition(g, params);
    EXPECT_TRUE(is_h_partition(g, part.hset, part.threshold)) << s;
    const auto coloring = compute_coloring_a2logn(g, params);
    EXPECT_TRUE(is_proper_coloring(g, coloring.color)) << s;
    const auto mis = compute_mis(g, params);
    EXPECT_TRUE(is_mis(g, mis.in_set)) << s;
  }
}

TEST(AdversarialIds, PartitionVaIsIdInvariant) {
  // Procedure Partition's join rule ignores IDs entirely, so its
  // metrics must be identical under every relabeling.
  const Graph base = gen::forest_union(400, 3, 149);
  const auto reference = compute_h_partition(base, {.arboricity = 3});
  for (std::uint64_t s = 1; s <= 3; ++s) {
    const Graph g = relabel(base, random_permutation(400, s));
    const auto part = compute_h_partition(g, {.arboricity = 3});
    EXPECT_EQ(part.metrics.round_sum(), reference.metrics.round_sum())
        << s;
    EXPECT_EQ(part.metrics.worst_case(), reference.metrics.worst_case())
        << s;
  }
}

TEST(AdversarialIds, LeaderElectionVaVariesWithIds) {
  // The measure maxes over assignments: sequential ids give VA O(1),
  // bit-reversal ids give VA Theta(log n) on the same cycle topology.
  const std::size_t log_n = 12;
  const Graph sequential = gen::ring(1 << log_n);
  const Graph adversarial =
      relabel(sequential, bit_reversal_permutation(log_n));
  const auto easy = compute_ring_leader_election(sequential);
  const auto hard = compute_ring_leader_election(adversarial);
  EXPECT_LT(easy.metrics.vertex_averaged(), 3.0);
  EXPECT_GT(hard.metrics.vertex_averaged(), 4.0);
  EXPECT_EQ(easy.metrics.worst_case(), hard.metrics.worst_case());
}

}  // namespace
}  // namespace valocal
