// RMAT generator: determinism across thread counts and block
// schedules, id-range safety, spec parsing, and equivalence of the
// streaming CSR build against the staged GraphBuilder path on the
// generator's own (self-loop- and duplicate-bearing) pair stream.
#include "graph/rmat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <vector>

#include "graph/stats.hpp"

namespace valocal {
namespace {

using gen::RmatParams;
using gen::RmatSource;

// Structural equality down to edge ids and reciprocal ports — the
// "byte-identical" claim the generator's determinism rests on.
void expect_identical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edge_u(e), b.edge_u(e)) << "edge " << e;
    ASSERT_EQ(a.edge_v(e), b.edge_v(e)) << "edge " << e;
  }
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v), nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "neighbors of " << v;
    const auto ia = a.incident_edges(v), ib = b.incident_edges(v);
    ASSERT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin(), ib.end()))
        << "incident edges of " << v;
    for (std::size_t i = 0; i < na.size(); ++i)
      ASSERT_EQ(a.neighbor_port(v, i), b.neighbor_port(v, i))
          << "port " << i << " of " << v;
  }
}

RmatParams small_params() {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 42;
  return p;
}

TEST(Rmat, PairStreamIsDeterministicAcrossThreadCounts) {
  const RmatParams p = small_params();
  const RmatSource src(p);
  auto collect = [&](std::size_t threads) {
    std::vector<std::uint64_t> pairs;
    std::mutex mu;
    src.stream(threads, [&](EdgeBlockSource::Block block) {
      std::lock_guard<std::mutex> lock(mu);
      for (std::size_t i = 0; i + 1 < block.size(); i += 2)
        pairs.push_back((std::uint64_t{block[i]} << 32) | block[i + 1]);
    });
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };
  const auto serial = collect(1);
  EXPECT_EQ(serial.size(), p.num_directed_edges());
  EXPECT_EQ(serial, collect(4));
  EXPECT_EQ(serial, collect(3));
}

TEST(Rmat, BuiltGraphIdenticalAcrossThreadCounts) {
  const RmatParams p = small_params();
  const Graph g1 = gen::rmat(p, 1);
  const Graph g4 = gen::rmat(p, 4);
  expect_identical(g1, g4);
  EXPECT_GT(g1.num_edges(), 0u);
  // Simple graph: strictly fewer edges than raw pairs (dupes dropped).
  EXPECT_LT(g1.num_edges(), p.num_directed_edges());
}

TEST(Rmat, SeedChangesTheGraph) {
  RmatParams p = small_params();
  const Graph g1 = gen::rmat(p);
  p.seed = 43;
  const Graph g2 = gen::rmat(p);
  ASSERT_EQ(g1.num_vertices(), g2.num_vertices());
  bool differs = g1.num_edges() != g2.num_edges();
  for (Vertex v = 0; v < g1.num_vertices() && !differs; ++v) {
    const auto a = g1.neighbors(v), b = g2.neighbors(v);
    differs = !std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  EXPECT_TRUE(differs);
}

TEST(Rmat, ScramblingPermutesButPreservesRange) {
  RmatParams p = small_params();
  p.scramble_ids = false;
  const Graph unscrambled = gen::rmat(p);
  p.scramble_ids = true;
  const Graph scrambled = gen::rmat(p);
  // A bijection on ids preserves the vertex count and cannot push ids
  // out of [0, n) — from_source would have aborted otherwise.
  EXPECT_EQ(scrambled.num_vertices(), p.num_vertices());
  // Unscrambled RMAT concentrates degree at low ids; the mix must
  // actually change the adjacency, not just relabel nothing.
  bool differs = false;
  for (Vertex v = 0; v < scrambled.num_vertices() && !differs; ++v) {
    const auto a = scrambled.neighbors(v), b = unscrambled.neighbors(v);
    differs = !std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  EXPECT_TRUE(differs);
}

TEST(Rmat, StreamingBuildMatchesStagedBuilderOnRawPairs) {
  const RmatParams p = small_params();
  const RmatSource src(p);
  const Graph streamed = Graph::from_source(p.num_vertices(), src, 2);
  GraphBuilder builder(p.num_vertices());
  src.stream(1, [&](EdgeBlockSource::Block block) {
    for (std::size_t i = 0; i + 1 < block.size(); i += 2)
      if (block[i] != block[i + 1]) builder.add_edge(block[i], block[i + 1]);
  });
  const Graph staged = std::move(builder).build();
  ASSERT_EQ(streamed.num_edges(), staged.num_edges());
  for (Vertex v = 0; v < streamed.num_vertices(); ++v) {
    const auto a = streamed.neighbors(v), b = staged.neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "neighbors of " << v;
  }
}

TEST(Rmat, StatsSweepIsConsistent) {
  const Graph g = gen::rmat(small_params());
  const GraphStats s = compute_graph_stats(g);
  EXPECT_EQ(s.n, g.num_vertices());
  EXPECT_EQ(s.m, g.num_edges());
  EXPECT_EQ(s.max_degree, g.max_degree());
  std::uint64_t hist_total = 0;
  for (const std::uint64_t c : s.degree_hist_log2) hist_total += c;
  EXPECT_EQ(hist_total, g.num_vertices());
  EXPECT_EQ(s.degree_hist_log2[0], s.num_isolated);
  EXPECT_GE(s.arboricity_estimate, 1u);
  EXPECT_DOUBLE_EQ(s.avg_degree,
                   2.0 * static_cast<double>(s.m) / static_cast<double>(s.n));
}

TEST(Rmat, SpecParsing) {
  const RmatParams p = gen::parse_rmat_spec("24x16", 7);
  EXPECT_EQ(p.scale, 24u);
  EXPECT_EQ(p.edge_factor, 16u);
  EXPECT_EQ(p.seed, 7u);
  EXPECT_DEATH((void)gen::parse_rmat_spec("24"), "rmat spec");
  EXPECT_DEATH((void)gen::parse_rmat_spec("x16"), "rmat spec");
  EXPECT_DEATH((void)gen::parse_rmat_spec("24x"), "rmat spec");
  EXPECT_DEATH((void)gen::parse_rmat_spec("abcx16"), "rmat spec");
}

TEST(Rmat, ParameterValidation) {
  RmatParams p = small_params();
  p.scale = 0;
  EXPECT_DEATH((void)gen::rmat(p), "scale");
  p = small_params();
  p.scale = 31;
  EXPECT_DEATH((void)gen::rmat(p), "scale");
  p = small_params();
  p.a = 0.9;
  p.b = 0.09;
  p.c = 0.02;  // a + b + c >= 1 leaves no mass for quadrant d
  EXPECT_DEATH((void)gen::rmat(p), "probabilit");
  p = small_params();
  p.edge_factor = 0;
  EXPECT_DEATH((void)gen::rmat(p), "edge_factor");
}

}  // namespace
}  // namespace valocal
