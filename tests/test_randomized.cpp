#include <gtest/gtest.h>

#include <tuple>

#include "algo/rand_a_loglog.hpp"
#include "algo/rand_delta_plus1.hpp"
#include "baseline/luby_mis.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(RandDeltaPlusOne, ProperWithDeltaPlusOne) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Graph g = gen::erdos_renyi(800, 6.0, seed);
    const auto result = compute_rand_delta_plus1(g, seed);
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << seed;
    EXPECT_LE(result.num_colors, g.max_degree() + 1);
  }
}

TEST(RandDeltaPlusOne, Theorem91ConstantVertexAveraged) {
  // VA must stay O(1) (small constant) across two orders of magnitude.
  for (std::size_t n : {1024u, 16384u, 65536u}) {
    const Graph g = gen::forest_union(n, 3, 7);
    const auto result = compute_rand_delta_plus1(g, 99);
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << n;
    // Each 2-round trial succeeds w.p. >= 1/4: VA <= 2 * 4 plus slack.
    EXPECT_LE(result.metrics.vertex_averaged(), 12.0) << n;
  }
}

TEST(RandDeltaPlusOne, Reproducible) {
  const Graph g = gen::erdos_renyi(300, 5.0, 4);
  const auto r1 = compute_rand_delta_plus1(g, 42);
  const auto r2 = compute_rand_delta_plus1(g, 42);
  EXPECT_EQ(r1.color, r2.color);
}

TEST(RandDeltaPlusOne, WorksOnCompleteGraph) {
  const Graph g = gen::complete(40);
  const auto result = compute_rand_delta_plus1(g, 5);
  EXPECT_TRUE(is_proper_coloring(g, result.color));
  EXPECT_EQ(result.num_colors, 40u);  // clique forces all Delta+1 colors
}

TEST(RandALogLog, ProperWithALogLogPalette) {
  for (std::size_t a : {1u, 2u, 4u}) {
    const Graph g = gen::forest_union(2048, a, 61);
    const auto result = compute_rand_a_loglog(g, {.arboricity = a}, 11);
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << "a=" << a;
    EXPECT_LE(result.num_colors, result.palette_bound);
  }
}

TEST(RandALogLog, PaletteIsALogLogN) {
  RandALogLogAlgo small(1024, {.arboricity = 2});
  RandALogLogAlgo large(1 << 20, {.arboricity = 2});
  // (t+1)(A+1) with t = floor(2 loglog n): grows only with loglog n.
  EXPECT_LE(large.palette_bound(), small.palette_bound() * 3);
}

TEST(RandALogLog, Theorem92ConstantVertexAveraged) {
  for (std::size_t n : {1024u, 16384u}) {
    const Graph g = gen::forest_union(n, 2, 67);
    const auto result = compute_rand_a_loglog(g, {.arboricity = 2}, 23);
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << n;
    EXPECT_LE(result.metrics.vertex_averaged(), 16.0) << n;
  }
}

TEST(RandALogLog, AdversarialTreeStillConstantVa) {
  const PartitionParams params{.arboricity = 1, .epsilon = 1.0};
  const Graph g = gen::dary_tree(65536, params.threshold() + 1);
  const auto result = compute_rand_a_loglog(g, params, 31);
  EXPECT_TRUE(is_proper_coloring(g, result.color));
  // Worst case is driven by the phase-2 dataflow chain (log-ish), the
  // average stays small.
  EXPECT_LT(result.metrics.vertex_averaged(),
            static_cast<double>(result.metrics.worst_case()));
  EXPECT_LE(result.metrics.vertex_averaged(), 16.0);
}

TEST(LubyMis, ValidAndLogRounds) {
  for (std::uint64_t seed : {1ULL, 9ULL}) {
    const Graph g = gen::erdos_renyi(2000, 8.0, seed);
    const auto result = compute_luby_mis(g, seed);
    EXPECT_TRUE(is_mis(g, result.in_set)) << seed;
    // O(log n) w.h.p. — generous cap (2 engine rounds per trial).
    EXPECT_LE(result.metrics.worst_case(), 2u * 40u);
  }
}

TEST(LubyMis, Reproducible) {
  const Graph g = gen::forest_union(500, 3, 71);
  const auto r1 = compute_luby_mis(g, 8);
  const auto r2 = compute_luby_mis(g, 8);
  EXPECT_EQ(r1.in_set, r2.in_set);
}

class RandSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(RandSweep, BothColoringsProper) {
  const auto [n, a, seed] = GetParam();
  const Graph g = gen::forest_union(n, a, seed * 131);
  const auto r1 = compute_rand_delta_plus1(g, seed);
  EXPECT_TRUE(is_proper_coloring(g, r1.color));
  const auto r2 = compute_rand_a_loglog(g, {.arboricity = a}, seed);
  EXPECT_TRUE(is_proper_coloring(g, r2.color));
  EXPECT_TRUE(is_mis(g, compute_luby_mis(g, seed).in_set));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandSweep,
    ::testing::Combine(::testing::Values(128, 1024),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace valocal
