// Binary edge-list format: round-trip fidelity, byte-identity of the
// canonical save→load→save cycle, header/payload validation on
// corrupted files, the width-8 interchange path, and loud failure on
// unwritable targets (the satellite bugfix: a full disk must abort,
// not silently truncate).
#include "graph/edgelist_bin.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/rmat.hpp"

namespace valocal {
namespace {

std::string temp_path(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

/// A syntactically valid width-`width` file over `n` vertices.
std::string make_file(std::uint32_t width, std::uint64_t n,
                      const std::vector<std::uint64_t>& pairs) {
  std::string bytes;
  bytes.append(kEdgeListBinMagic, sizeof(kEdgeListBinMagic));
  const std::uint32_t version = kEdgeListBinVersion;
  bytes.append(reinterpret_cast<const char*>(&version), 4);
  bytes.append(reinterpret_cast<const char*>(&width), 4);
  bytes.append(reinterpret_cast<const char*>(&n), 8);
  const std::uint64_t m = pairs.size() / 2;
  bytes.append(reinterpret_cast<const char*>(&m), 8);
  for (const std::uint64_t id : pairs) {
    if (width == 8) {
      bytes.append(reinterpret_cast<const char*>(&id), 8);
    } else {
      const std::uint32_t narrow = static_cast<std::uint32_t>(id);
      bytes.append(reinterpret_cast<const char*>(&narrow), 4);
    }
  }
  return bytes;
}

TEST(EdgelistBin, RoundTripPreservesTheGraph) {
  const Graph g = gen::forest_union(500, 3, 97);
  const std::string path = temp_path("valocal_test_roundtrip.bin");
  save_edgelist_bin(path, g);

  const BinEdgeList file(path);
  EXPECT_EQ(file.num_vertices(), g.num_vertices());
  EXPECT_EQ(file.num_pairs(), g.num_edges());
  EXPECT_EQ(file.id_width(), 4u);

  const Graph back = load_graph_bin(path);
  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  ASSERT_EQ(back.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_TRUE(back.has_edge(g.edge_u(e), g.edge_v(e)));
  std::remove(path.c_str());
}

TEST(EdgelistBin, CanonicalSaveLoadSaveIsByteIdentical) {
  // Graphs built by the streaming path have canonical (lexicographic)
  // edge ids, so saving one is a fixed point: save -> load -> save
  // must reproduce the file byte for byte. This is what makes the
  // format safe as an exchange/caching layer — re-ingesting a file
  // and re-exporting it cannot drift.
  gen::RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  p.seed = 5;
  const Graph g = gen::rmat(p);
  const std::string path1 = temp_path("valocal_test_fixpoint1.bin");
  const std::string path2 = temp_path("valocal_test_fixpoint2.bin");
  save_edgelist_bin(path1, g);
  save_edgelist_bin(path2, load_graph_bin(path1));
  EXPECT_EQ(slurp(path1), slurp(path2));
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

TEST(EdgelistBin, SourceSaveMatchesGraphLoad) {
  // Streaming a generator straight to disk and ingesting the file must
  // build the same graph as generating in memory.
  gen::RmatParams p;
  p.scale = 9;
  p.edge_factor = 8;
  p.seed = 11;
  const std::string path = temp_path("valocal_test_source_save.bin");
  save_edgelist_bin(path, p.num_vertices(), gen::RmatSource(p));
  const Graph from_file = load_graph_bin(path, /*num_threads=*/2);
  const Graph direct = gen::rmat(p);
  ASSERT_EQ(from_file.num_edges(), direct.num_edges());
  for (EdgeId e = 0; e < direct.num_edges(); ++e) {
    EXPECT_EQ(from_file.edge_u(e), direct.edge_u(e));
    EXPECT_EQ(from_file.edge_v(e), direct.edge_v(e));
  }
  std::remove(path.c_str());
}

TEST(EdgelistBin, EmptyGraphRoundTrips) {
  const std::string path = temp_path("valocal_test_empty.bin");
  save_edgelist_bin(path, Graph(3, {}));
  const Graph back = load_graph_bin(path);
  EXPECT_EQ(back.num_vertices(), 3u);
  EXPECT_EQ(back.num_edges(), 0u);
  std::remove(path.c_str());
}

TEST(EdgelistBin, Width8InterchangeConverts) {
  const std::string path = temp_path("valocal_test_width8.bin");
  dump(path, make_file(8, 4, {0, 1, 1, 2, 2, 3}));
  const BinEdgeList file(path);
  EXPECT_EQ(file.id_width(), 8u);
  const Graph g = load_graph_bin(path);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 3));
  std::remove(path.c_str());
}

TEST(EdgelistBin, RejectsCorruptedFiles) {
  const std::string path = temp_path("valocal_test_corrupt.bin");
  const std::string good = make_file(4, 4, {0, 1, 1, 2});

  dump(path, good.substr(0, 16));  // shorter than the header
  EXPECT_DEATH((void)BinEdgeList(path), "shorter than the 32-byte");

  dump(path, good.substr(0, good.size() - 4));  // truncated payload
  EXPECT_DEATH((void)BinEdgeList(path), "truncated or oversized");

  std::string bad = good;
  bad[0] = 'X';
  dump(path, bad);
  EXPECT_DEATH((void)BinEdgeList(path), "bad magic");

  bad = good;
  bad[8] = 99;  // version
  dump(path, bad);
  EXPECT_DEATH((void)BinEdgeList(path), "unsupported format version");

  bad = good;
  bad[12] = 3;  // width
  dump(path, bad);
  EXPECT_DEATH((void)BinEdgeList(path), "width must be 4 or 8");

  EXPECT_DEATH((void)BinEdgeList(temp_path("valocal_no_such_file.bin")),
               "cannot open");
  std::remove(path.c_str());
}

TEST(EdgelistBin, RejectsOutOfRangeIds) {
  // Width-4: the id fits 32 bits but exceeds n; caught by the
  // streaming build's range check (same check as the text loader).
  const std::string path = temp_path("valocal_test_range.bin");
  dump(path, make_file(4, 4, {0, 1, 5, 2}));
  EXPECT_DEATH((void)load_graph_bin(path), "out of range");

  // Width-8: a 64-bit id beyond n must die in the conversion, with
  // the width-8-specific message.
  dump(path, make_file(8, 4, {0, 1, std::uint64_t{1} << 40, 2}));
  EXPECT_DEATH((void)load_graph_bin(path), "width-8 pair");
  std::remove(path.c_str());
}

TEST(EdgelistBin, WriteFailureDiesLoudly) {
  // /dev/full: every flush fails with ENOSPC — the regression test for
  // the silent-truncation bug (saves used to return happily with a
  // partial file on a full disk).
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full unavailable";
  const Graph g = gen::ring(64);
  EXPECT_DEATH(save_edgelist_bin("/dev/full", g), "write failed");
  EXPECT_DEATH(save_edgelist_bin("/no/such/dir/out.bin", g), "cannot open");
}

}  // namespace
}  // namespace valocal
