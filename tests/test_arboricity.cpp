#include "graph/arboricity.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace valocal {
namespace {

TEST(Degeneracy, Basics) {
  EXPECT_EQ(degeneracy(gen::path(10)), 1u);
  EXPECT_EQ(degeneracy(gen::ring(10)), 2u);
  EXPECT_EQ(degeneracy(gen::star(50)), 1u);
  EXPECT_EQ(degeneracy(gen::complete(7)), 6u);
  EXPECT_EQ(degeneracy(gen::dary_tree(31, 2)), 1u);
  EXPECT_EQ(degeneracy(gen::grid(8, 8)), 2u);
}

TEST(Degeneracy, EmptyAndTrivial) {
  EXPECT_EQ(degeneracy(Graph(0, {})), 0u);
  EXPECT_EQ(degeneracy(Graph(3, {})), 0u);
  EXPECT_EQ(degeneracy(Graph(2, {{0, 1}})), 1u);
}

TEST(DegeneracyOrder, EachVertexHasBoundedLaterNeighbors) {
  const Graph g = gen::forest_union(300, 3, 11);
  const std::size_t d = degeneracy(g);
  const auto order = degeneracy_order(g);
  ASSERT_EQ(order.size(), g.num_vertices());
  std::vector<std::size_t> pos(g.num_vertices());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    std::size_t later = 0;
    for (Vertex u : g.neighbors(v))
      if (pos[u] > pos[v]) ++later;
    EXPECT_LE(later, d);
  }
}

TEST(NashWilliams, LowerBound) {
  EXPECT_EQ(nash_williams_lb(gen::complete(6)), 3u);  // 15/(5) = 3
  EXPECT_EQ(nash_williams_lb(gen::path(10)), 1u);
  EXPECT_EQ(nash_williams_lb(Graph(5, {})), 0u);
}

TEST(Arboricity, SandwichOnKnownFamilies) {
  // degeneracy/2 <= a <= degeneracy; nash_williams_lb <= a.
  for (std::size_t a : {2u, 4u, 6u}) {
    const Graph g = gen::forest_union(400, a, 3);
    EXPECT_LE(nash_williams_lb(g), a);
    EXPECT_LE(arboricity_upper_bound(g), 2 * a - 1);
    EXPECT_GE(arboricity_upper_bound(g), a / 2);
  }
}

TEST(Arboricity, UpperBoundAtLeastOne) {
  EXPECT_EQ(arboricity_upper_bound(Graph(4, {})), 1u);
}

}  // namespace
}  // namespace valocal
