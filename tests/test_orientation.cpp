#include "graph/orientation.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"

namespace valocal {
namespace {

TEST(Orientation, UnorientedByDefault) {
  const Graph g = gen::path(4);
  Orientation o(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    EXPECT_FALSE(o.is_oriented(e));
  EXPECT_EQ(o.num_oriented(), 0u);
  EXPECT_TRUE(o.is_acyclic());
  EXPECT_EQ(o.length(), 0u);
}

TEST(Orientation, OrientTowardsHigherIdIsAcyclic) {
  const Graph g = gen::ring(8);
  Orientation o(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    o.orient_towards(e, g.edge_v(e));  // towards larger endpoint
  EXPECT_TRUE(o.is_acyclic());
  EXPECT_EQ(o.num_oriented(), g.num_edges());
  EXPECT_LE(o.max_out_degree(), 2u);
}

TEST(Orientation, DirectedTriangleIsCyclic) {
  const Graph g(3, {{0, 1}, {1, 2}, {0, 2}});
  Orientation o(g);
  o.orient_towards(g.find_edge(0, 1), 1);
  o.orient_towards(g.find_edge(1, 2), 2);
  o.orient_towards(g.find_edge(0, 2), 0);  // 2 -> 0 closes the cycle
  EXPECT_FALSE(o.is_acyclic());
  EXPECT_EQ(o.length(), std::numeric_limits<std::size_t>::max());
}

TEST(Orientation, PathLength) {
  const Graph g = gen::path(5);  // 0-1-2-3-4
  Orientation o(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    o.orient_towards(e, g.edge_v(e));
  EXPECT_EQ(o.length(), 4u);
  EXPECT_EQ(o.max_out_degree(), 1u);
}

TEST(Orientation, ParentsAndChildren) {
  const Graph g = gen::star(4);  // center 0, leaves 1..3
  Orientation o(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e)
    o.orient_towards(e, 0);  // all edges towards the center
  EXPECT_EQ(o.out_degree(0), 0u);
  EXPECT_EQ(o.children(0).size(), 3u);
  EXPECT_EQ(o.parents(1), std::vector<Vertex>{0});
  EXPECT_EQ(o.out_degree(1), 1u);
  EXPECT_EQ(o.length(), 1u);
}

TEST(Orientation, HeadTailConsistency) {
  const Graph g = gen::grid(3, 3);
  Orientation o(g);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    o.orient_towards(e, g.edge_u(e));
    EXPECT_EQ(o.head(e), g.edge_u(e));
    EXPECT_EQ(o.tail(e), g.edge_v(e));
    o.orient_towards(e, g.edge_v(e));
    EXPECT_EQ(o.head(e), g.edge_v(e));
    EXPECT_EQ(o.tail(e), g.edge_u(e));
    o.clear(e);
    EXPECT_FALSE(o.is_oriented(e));
  }
}

}  // namespace
}  // namespace valocal
