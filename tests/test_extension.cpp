#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "algo/delta_plus1.hpp"
#include "algo/edge_coloring.hpp"
#include "algo/extension.hpp"
#include "algo/matching.hpp"
#include "algo/mis.hpp"
#include "graph/generators.hpp"
#include "validate/validate.hpp"

namespace valocal {
namespace {

TEST(CompositionSchedule, RoundArithmetic) {
  const CompositionSchedule s(1024, 1.0, 5);
  EXPECT_EQ(s.block(), 6u);
  EXPECT_EQ(s.iteration(1), 1u);
  EXPECT_EQ(s.position(1), 0u);
  EXPECT_EQ(s.iteration(6), 1u);
  EXPECT_EQ(s.position(6), 5u);
  EXPECT_EQ(s.iteration(7), 2u);
  EXPECT_EQ(s.position(7), 0u);
  EXPECT_EQ(s.total_rounds(), s.ell * 6);
}

TEST(DeltaPlusOne, ProperWithDeltaPlusOneColors) {
  for (std::size_t a : {1u, 2u, 4u}) {
    const Graph g = gen::forest_union(500, a, 51);
    const auto result = compute_delta_plus1(g, {.arboricity = a});
    EXPECT_TRUE(is_proper_coloring(g, result.color)) << "a=" << a;
    EXPECT_LE(result.num_colors, g.max_degree() + 1);
  }
}

TEST(DeltaPlusOne, StarUnionUsesAFewColorsDespiteHugeDelta) {
  // Table 1 row 7 regime: Delta >> a. The palette is Delta+1 as
  // required, but the VA complexity must track a, not Delta.
  const Graph g = gen::star_union(4000, 8);
  const auto result = compute_delta_plus1(g, {.arboricity = 2});
  EXPECT_TRUE(is_proper_coloring(g, result.color));
  DeltaPlusOneAlgo algo(g.num_vertices(), g.max_degree(),
                        {.arboricity = 2});
  // Every vertex terminates within a few iteration blocks.
  EXPECT_LE(result.metrics.vertex_averaged(),
            3.0 * static_cast<double>(algo.schedule().block()));
}

TEST(Mis, ValidOnManyFamilies) {
  struct Case {
    Graph g;
    std::size_t a;
  };
  std::vector<Case> cases;
  cases.push_back({gen::forest_union(600, 3, 53), 3});
  cases.push_back({gen::ring(101), 2});
  cases.push_back({gen::star(200), 1});
  cases.push_back({gen::grid(15, 15), 3});
  cases.push_back({gen::star_union(1000, 5), 2});
  for (auto& c : cases) {
    const auto result = compute_mis(c.g, {.arboricity = c.a});
    EXPECT_TRUE(is_mis(c.g, result.in_set));
  }
}

TEST(Mis, VaTracksAPlusLogStarNotLogN) {
  // VA must stay within a few blocks of the schedule (= O(a log a +
  // log* n)) even as n grows.
  for (std::size_t n : {1024u, 8192u}) {
    const Graph g = gen::forest_union(n, 2, 55);
    MisAlgo algo(n, {.arboricity = 2});
    const auto result = compute_mis(g, {.arboricity = 2});
    EXPECT_TRUE(is_mis(g, result.in_set)) << n;
    EXPECT_LE(result.metrics.vertex_averaged(),
              3.0 * static_cast<double>(algo.schedule().block()))
        << n;
  }
}

TEST(EdgeColoring, ProperWithTwoDeltaMinusOneColors) {
  for (std::size_t a : {1u, 2u, 4u}) {
    const Graph g = gen::forest_union(400, a, 57);
    const auto result = compute_edge_coloring(g, {.arboricity = a});
    EXPECT_TRUE(is_proper_edge_coloring(g, result.color)) << "a=" << a;
    EXPECT_LE(result.num_colors, 2 * g.max_degree() - 1);
  }
}

TEST(EdgeColoring, StarUnionHighDelta) {
  const Graph g = gen::star_union(2000, 4);
  const auto result = compute_edge_coloring(g, {.arboricity = 2});
  EXPECT_TRUE(is_proper_edge_coloring(g, result.color));
  EXPECT_LE(result.num_colors, 2 * g.max_degree() - 1);
}

TEST(Matching, MaximalOnManyFamilies) {
  struct Case {
    Graph g;
    std::size_t a;
  };
  std::vector<Case> cases;
  cases.push_back({gen::forest_union(600, 3, 59), 3});
  cases.push_back({gen::ring(100), 2});
  cases.push_back({gen::ring(101), 2});
  cases.push_back({gen::star(150), 1});
  cases.push_back({gen::grid(12, 17), 3});
  cases.push_back({gen::star_union(900, 4), 2});
  for (auto& c : cases) {
    const auto result = compute_matching(c.g, {.arboricity = c.a});
    EXPECT_TRUE(is_maximal_matching(c.g, result.in_matching));
  }
}

TEST(AllProblems, AdversarialTreeShowsVaWorstCaseGap) {
  // Table 2 shape: on the (A+1)-ary tree (partition worst case
  // Theta(log n / log a)), the VA of MIS / EC / MM stays near one
  // iteration block while the worst case spans many blocks.
  const PartitionParams params{.arboricity = 1, .epsilon = 1.0};
  const Graph g = gen::dary_tree(65536, params.threshold() + 1);

  const auto mis = compute_mis(g, params);
  EXPECT_TRUE(is_mis(g, mis.in_set));
  EXPECT_LT(mis.metrics.vertex_averaged(),
            0.5 * static_cast<double>(mis.metrics.worst_case()));

  const auto mm = compute_matching(g, params);
  EXPECT_TRUE(is_maximal_matching(g, mm.in_matching));
  EXPECT_LT(mm.metrics.vertex_averaged(),
            0.5 * static_cast<double>(mm.metrics.worst_case()));

  const auto ec = compute_edge_coloring(g, params);
  EXPECT_TRUE(is_proper_edge_coloring(g, ec.color));
  EXPECT_LT(ec.metrics.vertex_averaged(),
            0.5 * static_cast<double>(ec.metrics.worst_case()));
}

TEST(Definition81, ExtendsAnyPartialSolutionUnchanged) {
  // Definition 8.1: a proper partial solution is extended without being
  // modified. Pre-color the even vertices greedily, extend, verify.
  const Graph g = gen::forest_union(400, 3, 211);
  std::vector<std::int32_t> partial(g.num_vertices(), -1);
  for (Vertex v = 0; v < g.num_vertices(); v += 2) {
    std::vector<char> taken(g.max_degree() + 1, 0);
    for (Vertex u : g.neighbors(v))
      if (partial[u] >= 0) taken[partial[u]] = 1;
    std::int32_t c = 0;
    while (taken[c]) ++c;
    partial[v] = c;
  }
  const auto result =
      extend_delta_plus1(g, {.arboricity = 3}, partial);
  EXPECT_TRUE(is_proper_coloring(g, result.color));
  EXPECT_LE(count_colors(result.color), g.max_degree() + 1);
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (partial[v] >= 0) EXPECT_EQ(result.color[v], partial[v]) << v;
  // Preset vertices terminate in round 1.
  for (Vertex v = 0; v < g.num_vertices(); v += 2)
    EXPECT_EQ(result.metrics.rounds[v], 1u);
}

TEST(Definition81, EmptyAndFullPartialSolutions) {
  const Graph g = gen::ring(30);
  // Empty partial solution: equivalent to the plain algorithm.
  const auto empty = extend_delta_plus1(
      g, {.arboricity = 2}, std::vector<std::int32_t>(30, -1));
  EXPECT_TRUE(is_proper_coloring(g, empty.color));
  // Full partial solution: nothing to do, everyone stops in round 1.
  std::vector<std::int32_t> full(30);
  for (Vertex v = 0; v < 30; ++v) full[v] = static_cast<std::int32_t>(v % 3 == 0 && v + 1 == 30 ? 2 : v % 2);
  full[29] = 2;  // close the odd cycle properly
  const auto done = extend_delta_plus1(g, {.arboricity = 2}, full);
  EXPECT_TRUE(is_proper_coloring(g, done.color));
  EXPECT_EQ(done.metrics.worst_case(), 1u);
}

class ExtensionSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(ExtensionSweep, AllFourProblems) {
  const auto [n, a, seed] = GetParam();
  const Graph g = gen::forest_union(n, a, seed);
  const PartitionParams params{.arboricity = a};

  const auto coloring = compute_delta_plus1(g, params);
  EXPECT_TRUE(is_proper_coloring(g, coloring.color));
  EXPECT_LE(coloring.num_colors, g.max_degree() + 1);

  const auto mis = compute_mis(g, params);
  EXPECT_TRUE(is_mis(g, mis.in_set));

  const auto ec = compute_edge_coloring(g, params);
  EXPECT_TRUE(is_proper_edge_coloring(g, ec.color));
  EXPECT_LE(ec.num_colors, 2 * g.max_degree() - 1);

  const auto mm = compute_matching(g, params);
  EXPECT_TRUE(is_maximal_matching(g, mm.in_matching));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExtensionSweep,
    ::testing::Combine(::testing::Values(64, 256, 1024),
                       ::testing::Values(1, 2, 4),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace valocal
