#include "util/mathx.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace valocal {
namespace {

TEST(MathX, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0);
  EXPECT_EQ(log2_floor(2), 1);
  EXPECT_EQ(log2_floor(3), 1);
  EXPECT_EQ(log2_floor(4), 2);
  EXPECT_EQ(log2_floor(1023), 9);
  EXPECT_EQ(log2_floor(1024), 10);
  EXPECT_EQ(log2_floor(~0ULL), 63);
}

TEST(MathX, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(2), 1);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(4), 2);
  EXPECT_EQ(log2_ceil(5), 3);
  EXPECT_EQ(log2_ceil(1024), 10);
  EXPECT_EQ(log2_ceil(1025), 11);
}

TEST(MathX, IteratedLog) {
  EXPECT_EQ(ilog(0, 65536), 65536u);
  EXPECT_EQ(ilog(1, 65536), 16u);
  EXPECT_EQ(ilog(2, 65536), 4u);
  EXPECT_EQ(ilog(3, 65536), 2u);
  EXPECT_EQ(ilog(4, 65536), 1u);
  EXPECT_EQ(ilog(10, 65536), 1u);  // clamped at 1
}

TEST(MathX, LogStar) {
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(3), 2);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(5), 3);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(17), 4);
  EXPECT_EQ(log_star(65536), 4);
  EXPECT_EQ(log_star(65537), 5);
}

TEST(MathX, RhoDefinition) {
  // rho(n) is the largest k with log^(k-1) n >= log* n.
  for (std::uint64_t n : {16ULL, 256ULL, 65536ULL, 1ULL << 40}) {
    const int k = rho(n);
    EXPECT_GE(k, 2) << n;
    EXPECT_GE(ilog(k - 1, n), static_cast<std::uint64_t>(log_star(n)))
        << n;
    EXPECT_LT(ilog(k, n), static_cast<std::uint64_t>(log_star(n))) << n;
  }
}

TEST(MathX, RhoIsAtMostLogStar) {
  for (std::uint64_t n : {16ULL, 1024ULL, 1ULL << 20, 1ULL << 50})
    EXPECT_LE(rho(n), log_star(n) + 1) << n;
}

TEST(MathX, LogFloorGenericBase) {
  EXPECT_EQ(log_floor(2.0, 8), 3);
  EXPECT_EQ(log_floor(2.0, 9), 3);
  EXPECT_EQ(log_floor(1.5, 1), 0);
  // log base 1.5 of 100 ~ 11.35
  EXPECT_EQ(log_floor(1.5, 100), 11);
}

TEST(MathX, Primality) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(97));
  EXPECT_FALSE(is_prime(91));  // 7 * 13
  EXPECT_TRUE(is_prime(2147483647ULL));  // 2^31 - 1
  EXPECT_FALSE(is_prime(2147483647ULL * 3));
  EXPECT_TRUE(is_prime(1000000007ULL));
}

TEST(MathX, NextPrime) {
  EXPECT_EQ(next_prime(2), 2u);
  EXPECT_EQ(next_prime(8), 11u);
  EXPECT_EQ(next_prime(14), 17u);
  EXPECT_EQ(next_prime(100), 101u);
}

TEST(MathX, IpowCapped) {
  EXPECT_EQ(ipow_capped(2, 10, 1ULL << 40), 1024u);
  EXPECT_EQ(ipow_capped(10, 30, 1000), 1000u);  // capped
  EXPECT_EQ(ipow_capped(1, 100, 50), 1u);
}

TEST(MathX, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
}

}  // namespace
}  // namespace valocal
